#pragma once

// Machine cost models.
//
// The paper's measurements were taken on Cori Phase I (Cray XC, Haswell,
// Aries dragonfly, Lustre), Mira (BG/Q) and Titan (Cray XK7). We reproduce
// the *shape* of those measurements on one laptop core by advancing a
// per-rank virtual clock with analytic component costs. The same cost
// functions are evaluated directly at the paper's rank counts to produce
// the paper-scale rows in each bench (see DESIGN.md §2).
//
// Communication uses a postal (alpha-beta) model; collectives use binomial
// tree / recursive-doubling structures; compute kernels use per-element
// rates; the filesystem uses a striped-OST model with seeded log-normal
// interference (see io/lustre_model.hpp).

#include <cstdint>
#include <string>

namespace insitu::comm {

/// Parameters of the simulated parallel filesystem attached to a machine.
struct FileSystemParams {
  double per_ost_bandwidth = 500e6;  ///< bytes/sec sustained per OST
  int ost_count = 248;               ///< object storage targets
  double open_latency = 2e-3;        ///< per-file open/create cost (s)
  double metadata_latency = 5e-4;    ///< per-metadata-op cost (s)
  double interference_sigma = 0.25;  ///< log-normal sigma of shared-system
                                     ///< interference on I/O times
  int default_stripe_count = 4;      ///< stripes for large shared files
};

/// Analytic model of one HPC platform.
struct MachineModel {
  std::string name;

  // -- network (postal model) --
  double alpha = 1.5e-6;   ///< point-to-point latency (s)
  double beta = 1.6e-10;   ///< seconds per byte (~6 GB/s effective)

  // -- per-core compute rates --
  double cell_update_rate = 4.0e8;   ///< simple grid-cell updates per second
  double flop_rate = 8.0e9;          ///< scalar flops per second per core
  double pixel_blend_rate = 6.0e8;   ///< composited pixels per second
  double compress_rate = 3.5e7;      ///< DEFLATE input bytes per second
                                     ///< (serial; matches the paper's PNG
                                     ///< bottleneck on rank 0)
  double memcpy_rate = 6.0e9;        ///< bytes per second for buffer copies

  // -- system effects --
  double noise_sigma = 0.0;          ///< relative OS-jitter sigma applied by
                                     ///< benches that model variability
  double startup_per_rank = 1.2e-5;  ///< per-rank share of job launch /
                                     ///< library init scan costs
  int cores_per_node = 32;

  FileSystemParams fs;

  // ---- component cost functions (seconds) ----

  /// One point-to-point message of `bytes`.
  double ptp_time(std::uint64_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }

  /// ceil(log2(p)), the depth of a binomial tree over p ranks.
  static int tree_depth(int p);

  /// Broadcast of `bytes` over `p` ranks (binomial tree).
  double bcast_time(int p, std::uint64_t bytes) const;

  /// Reduce of `bytes` over `p` ranks (binomial tree; includes per-byte
  /// combine work).
  double reduce_time(int p, std::uint64_t bytes) const;

  /// Allreduce of `bytes` over `p` ranks (recursive doubling).
  double allreduce_time(int p, std::uint64_t bytes) const;

  /// Barrier over `p` ranks (dissemination).
  double barrier_time(int p) const;

  /// Gather of `bytes` per rank to the root over `p` ranks.
  double gather_time(int p, std::uint64_t bytes_per_rank) const;

  /// Image compositing over `p_active` ranks of an RGBA image with `pixels`
  /// pixels using a direct-send tree (the "hierarchical set of ranks"
  /// described in §4.1.3).
  double composite_tree_time(int p_active, std::uint64_t pixels) const;

  /// Binary-swap compositing (the alternative algorithm; each stage moves
  /// half the remaining image).
  double composite_binary_swap_time(int p_active, std::uint64_t pixels) const;

  /// Grid-kernel compute time: `updates` cell updates at `work_per_cell`
  /// relative cost (1.0 = one simple update).
  double compute_time(std::uint64_t updates, double work_per_cell = 1.0) const {
    return static_cast<double>(updates) * work_per_cell / cell_update_rate;
  }

  /// Serial DEFLATE/PNG encode of `bytes` of raw image data on one rank.
  double compress_time(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / compress_rate;
  }

  /// Buffer copy of `bytes` (used by non-zero-copy transports).
  double memcpy_time(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / memcpy_rate;
  }
};

/// Cori Phase I: Cray XC, 2x16-core Haswell/node, Aries dragonfly, Lustre
/// (30 PB, >700 GB/s aggregate). Miniapp study platform.
MachineModel cori_haswell();

/// Mira: IBM Blue Gene/Q, 16 cores/node (64 hw threads), 5D torus, GPFS.
/// PHASTA platform. Slower cores, faster relative network.
MachineModel mira_bgq();

/// Titan: Cray XK7, 16-core AMD Interlagos/node, Gemini, Lustre (Spider).
/// AVF-LESLIE platform.
MachineModel titan();

/// The machine the tests run on: negligible latency so executed-scale runs
/// are dominated by real work when virtual time is not the metric.
MachineModel localhost_model();

/// Look up a preset by name ("cori", "mira", "titan", "localhost").
MachineModel machine_by_name(const std::string& name);

}  // namespace insitu::comm
