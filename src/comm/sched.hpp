#pragma once

// Scheduler backend selection for the SPMD runtime.
//
// Two ways to execute virtual ranks (docs/SCALING.md):
//
//   * threads — one OS thread per rank. Simple, fully preemptive,
//     fine up to a few hundred ranks.
//   * mn      — M:N fiber scheduler (exec::FiberScheduler): ranks are
//     pooled continuations multiplexed onto a small worker pool,
//     yielding only at message-match points. Executes the full pipeline
//     at 10K+ ranks on one machine.
//
// Both produce bit-identical virtual times, histograms, and image
// hashes (gated by bench/ablation_sched). Selection follows the same
// convention as the kernel dispatch (`--kernels`/`INSITU_KERNELS`):
// benches accept `sched=`/`--sched`, and the INSITU_SCHED environment
// variable sets the process default.

#include <optional>
#include <string>
#include <string_view>

namespace insitu::comm {

enum class SchedBackend {
  kThreads,  ///< one OS thread per virtual rank
  kMn,       ///< M:N fibers on a TaskPool (exec::FiberScheduler)
};

const char* to_string(SchedBackend backend);

/// Parse "threads" or "mn"; nullopt for anything else.
std::optional<SchedBackend> parse_sched_backend(std::string_view name);

/// Process default: INSITU_SCHED if set and valid (invalid values warn
/// once to stderr and are ignored), else kThreads, unless overridden by
/// set_default_sched_backend.
SchedBackend default_sched_backend();

/// Override the process default (how `sched=`/`--sched` is wired).
void set_default_sched_backend(SchedBackend backend);

}  // namespace insitu::comm
