#pragma once

// Internal: factory for the communicator's shared Group state, whose
// definition is private to communicator.cpp. Used by the Runtime to create
// the world group.

#include <memory>

namespace insitu::comm::detail {

class Group;

std::shared_ptr<Group> make_group(int size);

}  // namespace insitu::comm::detail
