#pragma once

// Collective-engine selection for the SPMD communicator.
//
// Two ways to execute a collective rendezvous (docs/SCALING.md):
//
//   * flat — every rank serializes through one group-wide slot guarded
//     by a single mutex. The original engine; fine up to a few hundred
//     ranks, but the dominant wall-clock cost of every pipeline step at
//     10K+ executed ranks.
//   * tree — hierarchical combining tree: ranks rendezvous in leaf
//     blocks of `arity` consecutive ranks and only the last arrival of
//     each block ascends to the parent slot, so contention drops from
//     O(P) acquisitions of one mutex to O(arity) per level and wakeups
//     are targeted per block.
//
// Both engines produce bit-identical results and virtual times: the
// reduce combine schedule is canonical — fixed by (group size, arity),
// never by execution order (see communicator.cpp) — and virtual time
// comes from MachineModel charges, not from execution shape.
// bench/ablation_collectives gates this. Selection follows the same
// convention as the scheduler backend (`sched=`/`INSITU_SCHED`):
// benches accept `coll=`/`--coll` and `coll_arity=`, and the
// INSITU_COLL / INSITU_COLL_ARITY environment variables set the process
// defaults. Defaults are read when a world group is created; changing
// them does not affect live communicators.

#include <optional>
#include <string_view>

namespace insitu::comm {

enum class CollEngine {
  kFlat,  ///< single group-wide rendezvous slot (the original engine)
  kTree,  ///< hierarchical combining tree of arity-wide slots
};

const char* to_string(CollEngine engine);

/// Parse "flat" or "tree"; nullopt for anything else.
std::optional<CollEngine> parse_coll_engine(std::string_view name);

/// Process default: INSITU_COLL if set and valid (invalid values warn
/// once to stderr and are ignored), else kTree, unless overridden by
/// set_default_coll_engine.
CollEngine default_coll_engine();

/// Override the process default (how `coll=`/`--coll` is wired).
void set_default_coll_engine(CollEngine engine);

/// Fan-in per combining-tree level (leaf block width and interior slot
/// width). Also fixes the canonical combine schedule — for BOTH engines
/// — so changing the arity changes floating-point reduction bit
/// patterns; it never changes virtual times.
inline constexpr int kDefaultCollArity = 64;
inline constexpr int kMinCollArity = 2;

/// Process default arity: INSITU_COLL_ARITY if set and valid (>= 2;
/// invalid values warn once and are ignored), else kDefaultCollArity,
/// unless overridden by set_default_coll_arity.
int default_coll_arity();

/// Override the process default (how `coll_arity=` is wired). Values
/// below kMinCollArity are clamped.
void set_default_coll_arity(int arity);

}  // namespace insitu::comm
