#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace insitu::obs {

namespace {

/// Bucket index for a sample value; 0 absorbs non-positive values.
int bucket_index(double value) {
  if (!(value > 0.0)) return 0;
  const int exp = static_cast<int>(std::ceil(std::log2(value)));
  return std::clamp(exp - kHistogramMinExp, 0, kHistogramBuckets - 1);
}

/// Upper bound of bucket i (lower bound is the previous bucket's upper).
double bucket_upper(int i) { return std::ldexp(1.0, i + kHistogramMinExp); }

void atomic_update_min(std::atomic<double>& slot, double value) {
  double cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<double>& slot, double value) {
  double cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace {

/// A label value needs quoting whenever it contains a character the
/// `{k=v,...}` grammar assigns meaning to (or quote/escape chars).
bool value_needs_quoting(std::string_view value) {
  return value.find_first_of(",={}\"\\") != std::string_view::npos;
}

void append_label_value(std::string& key, std::string_view value) {
  if (!value_needs_quoting(value)) {
    key += value;
    return;
  }
  key += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') key += '\\';
    key += c;
  }
  key += '"';
}

}  // namespace

std::string metric_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  // Canonical (sorted) label order: the same label set always serializes
  // to the same key, so series identities in baselines and reports are
  // stable no matter the insertion order at the call site.
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    append_label_value(key, sorted[i].second);
  }
  key += '}';
  return key;
}

bool parse_metric_key(std::string_view key, std::string& name,
                      Labels& labels) {
  labels.clear();
  const std::size_t brace = key.find('{');
  name.assign(key.substr(0, brace == std::string_view::npos ? key.size()
                                                            : brace));
  if (brace == std::string_view::npos) return true;
  std::string_view body = key.substr(brace + 1);
  if (body.empty() || body.back() != '}') return false;
  body.remove_suffix(1);
  while (!body.empty()) {
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) return false;
    std::string k(body.substr(0, eq));
    body.remove_prefix(eq + 1);
    std::string v;
    if (!body.empty() && body.front() == '"') {
      // Quoted value: scan to the closing quote honoring backslash
      // escapes, then expect a comma or end-of-body.
      body.remove_prefix(1);
      bool closed = false;
      while (!body.empty()) {
        const char c = body.front();
        body.remove_prefix(1);
        if (c == '\\') {
          if (body.empty()) return false;
          v += body.front();
          body.remove_prefix(1);
        } else if (c == '"') {
          closed = true;
          break;
        } else {
          v += c;
        }
      }
      if (!closed) return false;
      if (!body.empty()) {
        if (body.front() != ',') return false;
        body.remove_prefix(1);
      }
    } else {
      const std::size_t comma = std::min(body.find(','), body.size());
      v.assign(body.substr(0, comma));
      body.remove_prefix(comma == body.size() ? comma : comma + 1);
    }
    labels.emplace_back(std::move(k), std::move(v));
  }
  return true;
}

std::string metric_key_with_label(std::string_view key, std::string_view label,
                                  std::string_view value) {
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) {
    return metric_key(key, {{std::string(label), std::string(value)}});
  }
  // Parse the existing canonical "{k=v,...}" suffix back into labels,
  // add ours (existing wins on collision), and re-serialize so the
  // result is canonical again.
  std::string name;
  Labels labels;
  if (!parse_metric_key(key, name, labels)) {
    // Malformed suffix: leave the key untouched rather than guess.
    return std::string(key);
  }
  for (const auto& [k, v] : labels) {
    if (k == label) return std::string(key);  // caller's label loses
  }
  labels.emplace_back(std::string(label), std::string(value));
  return metric_key(name, labels);
}

void Histogram::record(double value) {
  // First sample initializes min/max; "count 0 -> 1" transition is the
  // publication point, so racing first samples both run the CAS loops.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    double expected = 0.0;
    if (!min_.compare_exchange_strong(expected, value,
                                      std::memory_order_relaxed)) {
      atomic_update_min(min_, value);
    }
  } else {
    atomic_update_min(min_, value);
  }
  atomic_update_max(max_, value);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::array<std::uint64_t, kHistogramBuckets> Histogram::bucket_counts() const {
  std::array<std::uint64_t, kHistogramBuckets> out{};
  for (int i = 0; i < kHistogramBuckets; ++i) {
    out[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return out;
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

double histogram_quantile(const MetricSample& sample, double q) {
  if (sample.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(sample.count);
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t in_bucket = sample.buckets[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Geometric interpolation between the bucket bounds.
      const double hi = bucket_upper(i);
      const double lo = i == 0 ? 0.0 : bucket_upper(i - 1);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double est = lo + (hi - lo) * frac;
      return std::clamp(est, sample.min, sample.max);
    }
    seen += in_bucket;
  }
  return sample.max;
}

void merge_into(MetricsSnapshot& dst, const MetricsSnapshot& src) {
  for (const MetricSample& s : src) {
    auto it = std::lower_bound(
        dst.begin(), dst.end(), s,
        [](const MetricSample& a, const MetricSample& b) {
          return a.key < b.key;
        });
    if (it == dst.end() || it->key != s.key) {
      dst.insert(it, s);
      continue;
    }
    MetricSample& d = *it;
    switch (d.kind) {
      case MetricKind::kCounter:
        d.value += s.value;
        break;
      case MetricKind::kGauge:
        d.value = std::max(d.value, s.value);
        break;
      case MetricKind::kHistogram: {
        const bool d_empty = d.count == 0;
        const bool s_empty = s.count == 0;
        d.count += s.count;
        d.sum += s.sum;
        if (d_empty) {
          d.min = s.min;
          d.max = s.max;
        } else if (!s_empty) {
          d.min = std::min(d.min, s.min);
          d.max = std::max(d.max, s.max);
        }
        for (int i = 0; i < kHistogramBuckets; ++i) {
          d.buckets[static_cast<std::size_t>(i)] +=
              s.buckets[static_cast<std::size_t>(i)];
        }
        break;
      }
    }
  }
}

template <typename T>
T& MetricsRegistry::intern(std::map<std::string, std::unique_ptr<T>>& into,
                           std::string_view name, const Labels& labels) {
  std::string key = metric_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = into.find(key);
  if (it == into.end()) {
    it = into.emplace(std::move(key), std::make_unique<T>()).first;
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  return intern(counters_, name, labels);
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return intern(gauges_, name, labels);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels) {
  return intern(histograms_, name, labels);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    MetricSample s;
    s.key = key;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauges_) {
    MetricSample s;
    s.key = key;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, h] : histograms_) {
    MetricSample s;
    s.key = key;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.buckets = h->bucket_counts();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace insitu::obs
