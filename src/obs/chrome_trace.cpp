#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace insitu::obs {

namespace {

/// Fixed-point microseconds with stable formatting (golden-testable).
std::string format_us(double microseconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", microseconds);
  return buf;
}

std::string format_arg(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

void write_metadata(std::ostream& out, const char* what, int pid, int tid,
                    bool with_tid, const std::string& name, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (with_tid) out << ",\"tid\":" << tid;
  out << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
}

void write_span(std::ostream& out, const TraceEvent& e, int pid,
                const ChromeTraceOptions& options, bool& first) {
  double ts_us = 0.0;
  double dur_us = 0.0;
  if (options.timeline == ChromeTraceOptions::Timeline::kVirtual) {
    ts_us = e.virt_begin_s * 1e6;
    dur_us = e.virt_dur_s * 1e6;
  } else {
    ts_us = static_cast<double>(e.wall_begin_ns) / 1e3;
    dur_us = static_cast<double>(e.wall_dur_ns) / 1e3;
  }
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
      << to_string(e.category) << "\",\"ph\":\"X\",\"pid\":" << pid
      << ",\"tid\":" << e.rank << ",\"ts\":" << format_us(ts_us)
      << ",\"dur\":" << format_us(dur_us);
  if (options.include_args) {
    out << ",\"args\":{\"depth\":" << e.depth
        << ",\"virtual_s\":" << format_arg(e.virt_begin_s)
        << ",\"virtual_dur_s\":" << format_arg(e.virt_dur_s)
        << ",\"wall_ms\":"
        << format_arg(static_cast<double>(e.wall_begin_ns) / 1e6)
        << ",\"wall_dur_ms\":"
        << format_arg(static_cast<double>(e.wall_dur_ns) / 1e6);
    for (const TraceArg& a : e.args) {
      out << ",\"" << json_escape(a.key) << "\":" << format_arg(a.value);
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& out, std::span<const TraceRun> runs,
                        const ChromeTraceOptions& options) {
  out << "{\"displayTimeUnit\":\"ms\",";
  if (options.meta != nullptr) {
    const ExportMeta& m = *options.meta;
    out << "\"metadata\":{\"schema\":\"" << kTraceSchema << "\",\"tool\":\""
        << json_escape(m.tool) << "\",\"config\":\"" << json_escape(m.config)
        << "\",\"threads\":" << m.threads << ",\"seed\":" << m.seed << "},";
  }
  out << "\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const TraceRun& run = runs[r];
    const int pid = static_cast<int>(r) + 1;
    write_metadata(out, "process_name", pid, 0, /*with_tid=*/false,
                   run.label.empty() ? "insitu" : run.label, first);
    for (int rank = 0; rank < run.log.nranks; ++rank) {
      write_metadata(out, "thread_name", pid, rank, /*with_tid=*/true,
                     "rank " + std::to_string(rank), first);
    }
    // Async worker tracks (tid = rank + kWorkerTrackOffset) get their own
    // labels; sorted so the output stays byte-deterministic.
    std::set<int> worker_tids;
    for (const TraceEvent& e : run.log.events) {
      if (e.rank >= kWorkerTrackOffset) worker_tids.insert(e.rank);
    }
    for (const int tid : worker_tids) {
      write_metadata(out, "thread_name", pid, tid, /*with_tid=*/true,
                     "rank " + std::to_string(tid - kWorkerTrackOffset) +
                         " worker",
                     first);
    }
    for (const TraceEvent& e : run.log.events) {
      write_span(out, e, pid, options, first);
    }
  }
  out << "\n]}\n";
}

void write_chrome_trace(std::ostream& out, const TraceLog& log,
                        const ChromeTraceOptions& options) {
  const TraceRun run{"insitu", log};
  write_chrome_trace(out, std::span<const TraceRun>(&run, 1), options);
}

Status write_chrome_trace_file(const std::string& path,
                               std::span<const TraceRun> runs,
                               const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open trace file: " + path);
  write_chrome_trace(out, runs, options);
  out.flush();
  if (!out) return Status::Internal("short write to trace file: " + path);
  return Status::Ok();
}

Status write_chrome_trace_file(const std::string& path, const TraceLog& log,
                               const ChromeTraceOptions& options) {
  const TraceRun run{"insitu", log};
  return write_chrome_trace_file(path, std::span<const TraceRun>(&run, 1),
                                 options);
}

}  // namespace insitu::obs
