#pragma once

// Run-metadata header embedded in trace and metrics exports so the files
// are self-describing inputs for offline analysis (tools/perf_report).
//
// Schema strings are versioned independently per format:
//   chrome trace  -> "insitu-trace/1"    (top-level "metadata" object)
//   metrics CSV   -> "insitu-metrics/1"  (leading `# ...` comment line)
//   metrics JSON  -> "insitu-metrics/1"  ({"schema","meta","series"} object)
//   baselines     -> "insitu-bench-baseline/1" (obs/analyze/baseline.hpp)

#include <cstdint>
#include <string>

namespace insitu::obs {

inline constexpr const char* kTraceSchema = "insitu-trace/1";
inline constexpr const char* kMetricsSchema = "insitu-metrics/1";

struct ExportMeta {
  std::string tool;    ///< producing binary, e.g. "fig03_04_sensei_overhead"
  std::string config;  ///< the run's command line / config string
  int threads = 1;     ///< exec kernel-thread budget
  std::uint64_t seed = 0;  ///< RNG seed of the recorded runs (0 = unknown)
};

}  // namespace insitu::obs
