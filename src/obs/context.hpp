#pragma once

// Thread-local observability context, one per simulated rank.
//
// The SPMD Runtime installs a context on each rank thread before calling
// the rank body: the rank's private MetricsRegistry, an optional
// TraceRecorder, and a function that reads the rank's VirtualClock
// (type-erased so obs does not depend on comm). Instrumented code reaches
// both through obs::metrics() / obs::tracer() and never needs plumbing.
//
// Outside the Runtime (unit tests, ad-hoc tools) no context is installed:
// metrics() falls back to a process-wide registry and tracer() returns
// null, so instrumentation is always safe to call.

namespace insitu::obs {

class MetricsRegistry;
class TraceRecorder;

namespace live {
class FlightRecorder;
}

struct RankContext {
  int rank = 0;
  MetricsRegistry* metrics = nullptr;  // null -> process fallback registry
  TraceRecorder* trace = nullptr;      // null -> tracing disabled
  /// Optional flight-recorder ring fed by TraceScope even when full
  /// tracing is off (installed by the Runtime when a TelemetryHub is
  /// attached). Migrates with the rest of the context on fiber resume.
  live::FlightRecorder* flight = nullptr;
  /// Open TraceScope count on this thread; each span records the value at
  /// its construction as its nesting depth, making parent/child structure
  /// exact (and deterministic) for offline analysis.
  int span_depth = 0;
  double (*virtual_now_fn)(const void*) = nullptr;
  const void* virtual_clock = nullptr;

  double virtual_now() const {
    return virtual_now_fn == nullptr ? 0.0 : virtual_now_fn(virtual_clock);
  }
};

/// This thread's context (zeroed when nothing is installed).
RankContext& context();

/// The registry instrumentation should write to: the installed rank
/// registry, or a process-wide fallback shared by un-instrumented threads.
MetricsRegistry& metrics();

/// This thread's trace recorder, or null when tracing is disabled.
TraceRecorder* tracer();

/// The process-wide fallback registry (what metrics() returns with no
/// context installed). Exposed for tests.
MetricsRegistry& fallback_metrics();

/// RAII install/restore of the thread's context.
class ScopedRankContext {
 public:
  explicit ScopedRankContext(const RankContext& ctx)
      : saved_(context()) {
    context() = ctx;
  }
  ~ScopedRankContext() { context() = saved_; }

  ScopedRankContext(const ScopedRankContext&) = delete;
  ScopedRankContext& operator=(const ScopedRankContext&) = delete;

 private:
  RankContext saved_;
};

}  // namespace insitu::obs
