#pragma once

// Chrome-trace (chrome://tracing / Perfetto "Trace Event Format") export.
//
// Layout contract (docs/OBSERVABILITY.md): one *process* per recorded run
// (pid = run index + 1, named with the run label) and one *thread track
// per simulated rank* (tid = rank, named "rank N"). Span timestamps come
// from the selected timeline — virtual (modeled cluster seconds, the
// default: it is what reproduces the paper's figures) or wall. Each span
// carries its counterpart times as args so both are always inspectable.

#include <ostream>
#include <span>
#include <string>

#include "obs/export_meta.hpp"
#include "obs/trace.hpp"
#include "pal/status.hpp"

namespace insitu::obs {

/// One run's spans plus the label shown as the Chrome process name.
struct TraceRun {
  std::string label;
  TraceLog log;
};

struct ChromeTraceOptions {
  enum class Timeline { kVirtual, kWall };
  Timeline timeline = Timeline::kVirtual;
  /// Emit span args (bytes annotations, cross-timeline times, and the
  /// nesting depth tools/perf_report uses for exact self-time
  /// attribution). Golden tests disable this together with the wall
  /// timeline to get bit-deterministic output.
  bool include_args = true;
  /// When set, a top-level "metadata" object makes the file a
  /// self-describing perf_report input (docs/PERFORMANCE.md).
  const ExportMeta* meta = nullptr;
};

/// Serialize runs as a JSON object with a `traceEvents` array.
void write_chrome_trace(std::ostream& out, std::span<const TraceRun> runs,
                        const ChromeTraceOptions& options = {});

/// Single-run convenience (pid 1, label "insitu").
void write_chrome_trace(std::ostream& out, const TraceLog& log,
                        const ChromeTraceOptions& options = {});

Status write_chrome_trace_file(const std::string& path,
                                    std::span<const TraceRun> runs,
                                    const ChromeTraceOptions& options = {});

Status write_chrome_trace_file(const std::string& path,
                                    const TraceLog& log,
                                    const ChromeTraceOptions& options = {});

/// JSON string escaping (exposed for the metrics exporters and tests).
std::string json_escape(std::string_view text);

}  // namespace insitu::obs
