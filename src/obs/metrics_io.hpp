#pragma once

// Flat metrics dumps: CSV (one row per series) and JSON (one object per
// series). The `run` column labels which recorded run a series belongs to
// so a single file can hold a whole bench sweep; the bench binaries use
// "<config>/p<ranks>" labels.
//
// CSV columns:
//   run,metric,kind,value,count,sum,mean,min,max,p50,p90,p99
// `value` is the counter total / gauge value (empty for histograms);
// count..p99 are histogram statistics (empty for counters and gauges).
//
// With an ExportMeta the files become self-describing perf_report inputs:
// the CSV gains a leading `# insitu-metrics/1 ...` comment line and the
// JSON form becomes an object {"schema","meta","series"} instead of the
// bare series array.

#include <ostream>
#include <span>
#include <string>

#include "obs/export_meta.hpp"
#include "obs/metrics.hpp"
#include "pal/status.hpp"

namespace insitu::obs {

/// One labeled snapshot (typically one Runtime::run's merged metrics).
struct MetricsRun {
  std::string label;
  MetricsSnapshot snapshot;
};

void write_metrics_csv(std::ostream& out, std::span<const MetricsRun> runs,
                       const ExportMeta* meta = nullptr);
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot);

Status write_metrics_csv_file(const std::string& path,
                              std::span<const MetricsRun> runs,
                              const ExportMeta* meta = nullptr);
Status write_metrics_csv_file(const std::string& path,
                              const MetricsSnapshot& snapshot);

void write_metrics_json(std::ostream& out, std::span<const MetricsRun> runs,
                        const ExportMeta* meta = nullptr);

Status write_metrics_json_file(const std::string& path,
                               std::span<const MetricsRun> runs,
                               const ExportMeta* meta = nullptr);

}  // namespace insitu::obs
