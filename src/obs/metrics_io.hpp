#pragma once

// Flat metrics dumps: CSV (one row per series) and JSON (one object per
// series). The `run` column labels which recorded run a series belongs to
// so a single file can hold a whole bench sweep; the bench binaries use
// "<config>/p<ranks>" labels.
//
// CSV columns:
//   run,metric,kind,value,count,sum,mean,min,max,p50,p90,p99
// `value` is the counter total / gauge value (empty for histograms);
// count..p99 are histogram statistics (empty for counters and gauges).

#include <ostream>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "pal/status.hpp"

namespace insitu::obs {

/// One labeled snapshot (typically one Runtime::run's merged metrics).
struct MetricsRun {
  std::string label;
  MetricsSnapshot snapshot;
};

void write_metrics_csv(std::ostream& out, std::span<const MetricsRun> runs);
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot);

Status write_metrics_csv_file(const std::string& path,
                              std::span<const MetricsRun> runs);
Status write_metrics_csv_file(const std::string& path,
                              const MetricsSnapshot& snapshot);

void write_metrics_json(std::ostream& out, std::span<const MetricsRun> runs);

Status write_metrics_json_file(const std::string& path,
                               std::span<const MetricsRun> runs);

}  // namespace insitu::obs
