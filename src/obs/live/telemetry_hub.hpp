#pragma once

// TelemetryHub: always-on streaming telemetry for in-flight runs.
//
// The hub periodically snapshots every registered rank/tenant
// MetricsRegistry *while the run executes* (instrument reads are relaxed
// atomics, so sampling never blocks a rank's hot path; registry map
// mutexes are only contended on first-use series creation), stamps each
// source's tenant label, merges everything into one MetricsSnapshot,
// folds latency histograms through live::HdrHistogram for mergeable
// p50/p99/max, evaluates the configured health rules, and appends one
// JSONL frame (`insitu-live/1`) to the stream file that
// `tools/perf_report --follow` tails.
//
// It also retains flight-recorder state: live rings are snapshotted on
// dump_flight(), and a bounded deque of recently-retired rings (captured
// at unregister_source) keeps post-run dumps — quota breach is detected
// after the session's ranks exit — from coming up empty.
//
// Self-accounting: every tick's cost lands in the hub's own registry
// (obs.overhead.tick.seconds / frames / bytes_written / sources), which
// is merged into frames and into hub_metrics(); bench/ablation_telemetry
// gates busy_seconds() <= 2% of wall time.
//
// Works identically under sched=threads and sched=mn: sources register by
// registry pointer, and rank registries are stable for the rank body's
// lifetime on both backends. Nothing the hub does touches virtual
// clocks, so telemetry on/off is bit-identical in modeled time.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/live/flight_recorder.hpp"
#include "obs/live/health.hpp"
#include "obs/metrics.hpp"
#include "pal/config.hpp"
#include "pal/status.hpp"

namespace insitu::obs::live {

struct TelemetryOptions {
  /// Snapshot cadence for the background ticker; 0 disables the thread
  /// (tick_now() still works, which is what deterministic tests use).
  int interval_ms = 10;
  /// JSONL stream path (`insitu-live/1` frames); empty = no stream file.
  std::string stream_path;
  /// Flight-recorder dump path; empty = no dump file (dump_flight still
  /// returns the formatted text).
  std::string dump_path;
  /// Ring capacity handed to per-rank FlightRecorders by the Runtime.
  std::size_t flight_events = 256;
  /// How many retired (unregistered) rank rings to retain for dumps.
  std::size_t retired_rings = 64;
  /// Best-effort dump_flight("signal") on SIGSEGV/SIGBUS/SIGABRT. The
  /// crash path is documented-racy (not async-signal-safe); default off.
  bool install_signal_handler = false;
  std::vector<HealthRule> rules;
};

/// Parse `[health]` keys (interval_ms, stream, dump, flight_events,
/// rule.*) into options. Unknown keys are the config layer's business
/// (backends/configurable validates sections strictly).
Status parse_telemetry_config(const pal::Config& config,
                              TelemetryOptions& options);

class TelemetryHub {
 public:
  using AlertSink = std::function<void(const HealthAlert&)>;

  explicit TelemetryHub(TelemetryOptions options);
  ~TelemetryHub();

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  const TelemetryOptions& options() const { return options_; }

  /// Open the stream file and launch the ticker (when interval_ms > 0).
  Status start();

  /// Final tick (frame stamped `"final":true`), stop the ticker, close
  /// the stream. Idempotent; the destructor calls it.
  void stop();

  /// Register one source of live metrics (and optionally its flight
  /// ring). Returns a handle for unregister_source(). The registry and
  /// recorder must stay valid until unregistered. tenant may be empty.
  int register_source(int rank, std::string tenant,
                      const MetricsRegistry* metrics,
                      FlightRecorder* flight = nullptr);

  /// Drop a source; its flight ring (if any) is snapshotted into the
  /// bounded retired-ring deque so post-run dumps still have content.
  void unregister_source(int id);

  /// Callback invoked (on the ticking thread) for every alert. The sink
  /// MUST NOT call back into the hub and must do its own locking with a
  /// lock that is never held while calling hub methods (the service uses
  /// a dedicated degrade mutex for exactly this reason).
  void set_alert_sink(AlertSink sink);

  /// Synchronous snapshot+evaluate+append, usable with no ticker thread.
  void tick_now();

  /// Write (and return) a flight dump: all live rings, retained retired
  /// rings, and the current aggregated metrics. Appends to dump_path
  /// when configured.
  StatusOr<std::string> dump_flight(std::string_view reason);

  /// Merged tenant-stamped snapshot of all current sources plus the
  /// hub's own obs.* series.
  MetricsSnapshot aggregate() const;

  /// Just the hub's own registry (obs.overhead.*, obs.health.alert,
  /// obs.flight.dumps).
  MetricsSnapshot hub_metrics() const { return self_metrics_.snapshot(); }

  std::uint64_t frames_written() const;
  std::uint64_t alerts_fired() const;
  std::uint64_t flight_dumps() const;
  /// CPU seconds the telemetry path has spent in ticks + dumps (thread
  /// CPU time, so a preempted ticker is not charged for descheduling).
  double busy_seconds() const;

 private:
  struct Source {
    int id = 0;
    int rank = 0;
    std::string tenant;
    const MetricsRegistry* metrics = nullptr;
    FlightRecorder* flight = nullptr;
  };

  /// Snapshot + stamp + merge all sources (mutex_ must be held).
  MetricsSnapshot aggregate_locked() const;
  void tick_locked(bool final_frame);
  void append_frame_locked(const MetricsSnapshot& merged,
                           const std::vector<HealthAlert>& alerts,
                           bool final_frame);
  std::vector<HealthAlert> evaluate_rules_locked(
      const MetricsSnapshot& merged);
  void ticker_main();

  TelemetryOptions options_;
  MetricsRegistry self_metrics_;

  mutable std::mutex mutex_;  // sources, stream, edge state, retired rings
  std::vector<Source> sources_;
  int next_source_id_ = 1;
  std::deque<FlightSnapshot> retired_;
  std::ofstream stream_;
  std::uint64_t frame_index_ = 0;
  /// Edge-trigger latch per (rule name, series key).
  std::map<std::pair<std::string, std::string>, bool> latched_;

  AlertSink sink_;  // set before start(); called with mutex_ held
  std::mutex ticker_mutex_;
  std::condition_variable ticker_cv_;
  std::thread ticker_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> alerts_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<double> busy_seconds_{0.0};
};

}  // namespace insitu::obs::live
