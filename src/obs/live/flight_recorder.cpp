#include "obs/live/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace insitu::obs::live {

FlightRecorder::FlightRecorder(int rank, std::size_t capacity)
    : rank_(rank),
      capacity_(std::max<std::size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity_);
}

std::int64_t FlightRecorder::wall_now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void FlightRecorder::push(std::string_view name, Category category, int depth,
                          std::int64_t wall_begin_ns, std::int64_t wall_dur_ns,
                          double virt_begin_s, double virt_dur_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  FlightEvent& slot = ring_[seq_ % capacity_];
  const std::size_t n =
      std::min(name.size(), FlightEvent::kNameCapacity - 1);
  std::memcpy(slot.name, name.data(), n);
  slot.name[n] = '\0';
  slot.category = category;
  slot.depth = depth;
  slot.wall_begin_ns = wall_begin_ns;
  slot.wall_dur_ns = wall_dur_ns;
  slot.virt_begin_s = virt_begin_s;
  slot.virt_dur_s = virt_dur_s;
  slot.seq = seq_;
  ++seq_;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEvent> out;
  const std::uint64_t retained =
      std::min<std::uint64_t>(seq_, capacity_);
  out.reserve(retained);
  for (std::uint64_t i = seq_ - retained; i < seq_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::string format_flight_dump(std::string_view reason,
                               const std::vector<FlightSnapshot>& rings,
                               const MetricsSnapshot& metrics) {
  std::ostringstream out;
  out << "# insitu-flight/1 reason=" << reason << " rings=" << rings.size()
      << " metrics=" << metrics.size() << '\n';
  char buf[256];
  for (const FlightSnapshot& ring : rings) {
    const std::uint64_t dropped =
        ring.total_recorded - std::min<std::uint64_t>(ring.total_recorded,
                                                      ring.events.size());
    out << "== rank " << ring.rank;
    if (!ring.tenant.empty()) out << " tenant=" << ring.tenant;
    out << " events=" << ring.events.size() << " dropped=" << dropped
        << " ==\n";
    for (const FlightEvent& e : ring.events) {
      std::snprintf(buf, sizeof(buf),
                    "seq=%llu cat=%s depth=%d virt=%.9f+%.9fs "
                    "wall=%lld+%lldns name=%s\n",
                    static_cast<unsigned long long>(e.seq),
                    to_string(e.category), e.depth, e.virt_begin_s,
                    e.virt_dur_s,
                    static_cast<long long>(e.wall_begin_ns),
                    static_cast<long long>(e.wall_dur_ns), e.name);
      out << buf;
    }
  }
  out << "== metrics ==\n";
  for (const MetricSample& s : metrics) {
    out << s.key << ' ' << to_string(s.kind);
    if (s.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    " count=%llu sum=%.9g min=%.9g max=%.9g p50=%.9g "
                    "p99=%.9g\n",
                    static_cast<unsigned long long>(s.count), s.sum, s.min,
                    s.max, histogram_quantile(s, 0.50),
                    histogram_quantile(s, 0.99));
    } else {
      std::snprintf(buf, sizeof(buf), " value=%.9g\n", s.value);
    }
    out << buf;
  }
  return out.str();
}

}  // namespace insitu::obs::live

namespace insitu::obs::detail {

std::int64_t flight_wall_now_ns(const live::FlightRecorder* flight) {
  return flight == nullptr ? 0 : flight->wall_now_ns();
}

void flight_record(live::FlightRecorder* flight, const TraceEvent& event) {
  flight->push(event.name, event.category, event.depth, event.wall_begin_ns,
               event.wall_dur_ns, event.virt_begin_s, event.virt_dur_s);
}

}  // namespace insitu::obs::detail
