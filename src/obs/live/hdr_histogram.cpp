#include "obs/live/hdr_histogram.hpp"

#include <algorithm>
#include <cmath>

namespace insitu::obs::live {

namespace {

/// Octave upper bound, same grid as obs::Histogram buckets.
double octave_upper(int octave) {
  return std::ldexp(1.0, octave + kHistogramMinExp);
}

double octave_lower(int octave) {
  return octave == 0 ? 0.0 : octave_upper(octave - 1);
}

/// Flat sub-bucket index for a value; 0 absorbs non-positive samples.
int hdr_index(double value) {
  if (!(value > 0.0)) return 0;
  const int exp = static_cast<int>(std::ceil(std::log2(value)));
  const int octave = std::clamp(exp - kHistogramMinExp, 0,
                                kHistogramBuckets - 1);
  const double lo = octave_lower(octave);
  const double hi = octave_upper(octave);
  int sub = 0;
  if (hi > lo) {
    sub = static_cast<int>((value - lo) / (hi - lo) *
                           static_cast<double>(kSubBuckets));
    sub = std::clamp(sub, 0, kSubBuckets - 1);
  }
  return octave * kSubBuckets + sub;
}

double sub_lower(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const double lo = octave_lower(octave);
  const double hi = octave_upper(octave);
  return lo + (hi - lo) * static_cast<double>(sub) /
                  static_cast<double>(kSubBuckets);
}

double sub_upper(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const double lo = octave_lower(octave);
  const double hi = octave_upper(octave);
  return lo + (hi - lo) * static_cast<double>(sub + 1) /
                  static_cast<double>(kSubBuckets);
}

}  // namespace

void HdrHistogram::record(double value) { record_n(value, 1); }

void HdrHistogram::record_n(double value, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
  buckets_[static_cast<std::size_t>(hdr_index(value))] += n;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kHdrBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
}

HdrHistogram HdrHistogram::from_sample(const MetricSample& sample) {
  HdrHistogram out;
  if (sample.count == 0) return out;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t n = sample.buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    const double lo = octave_lower(i);
    const double hi = octave_upper(i);
    const double mid = lo == 0.0 ? hi * 0.5 : std::sqrt(lo * hi);
    out.buckets_[static_cast<std::size_t>(hdr_index(mid))] += n;
  }
  // Exact moments survive the conversion even though bucket placement is
  // midpoint-approximated.
  out.count_ = sample.count;
  out.sum_ = sample.sum;
  out.min_ = sample.min;
  out.max_ = sample.max;
  return out;
}

double HdrHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kHdrBuckets; ++i) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double lo = sub_lower(i);
      const double hi = sub_upper(i);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return std::clamp(lo + (hi - lo) * frac, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

}  // namespace insitu::obs::live
