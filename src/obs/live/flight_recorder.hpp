#pragma once

// Per-rank flight recorder: a fixed-size ring of the most recent span
// events, kept even when full tracing is off. The TelemetryHub snapshots
// rings on demand — quota breach, session cancel, fatal signal — so a
// silently misbehaving run still leaves an actionable "last N spans per
// rank" trace (docs/OBSERVABILITY.md, flight-recorder dump format).
//
// Writes come from the owning rank's TraceScope destructor; snapshots
// come from the hub thread. A plain mutex keeps both sides race-free:
// span completion is coarse (per bridge/analysis phase, not per element),
// so an uncontended lock per push is well inside the telemetry overhead
// budget that bench/ablation_telemetry gates.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace insitu::obs::live {

/// One recorded span, fixed-size so ring slots never allocate.
struct FlightEvent {
  static constexpr std::size_t kNameCapacity = 48;

  char name[kNameCapacity] = {};  // NUL-terminated, truncated if longer
  Category category = Category::kOther;
  int depth = 0;
  std::int64_t wall_begin_ns = 0;
  std::int64_t wall_dur_ns = 0;
  double virt_begin_s = 0.0;
  double virt_dur_s = 0.0;
  std::uint64_t seq = 0;  // monotonically increasing per recorder
};

class FlightRecorder {
 public:
  explicit FlightRecorder(int rank, std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  int rank() const { return rank_; }
  std::size_t capacity() const { return capacity_; }

  /// Nanoseconds since this recorder's construction (its wall epoch).
  std::int64_t wall_now_ns() const;

  void push(std::string_view name, Category category, int depth,
            std::int64_t wall_begin_ns, std::int64_t wall_dur_ns,
            double virt_begin_s, double virt_dur_s);

  /// Retained events, oldest first.
  std::vector<FlightEvent> snapshot() const;

  /// Total pushes ever (snapshot().size() caps at capacity; the
  /// difference is the number of dropped-oldest events).
  std::uint64_t total_recorded() const;

 private:
  const int rank_;
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_;  // ring_[seq_ % capacity_] is next slot
  std::uint64_t seq_ = 0;
};

/// Snapshot of one (possibly already finished) rank's ring, the unit the
/// hub retains for post-run dumps.
struct FlightSnapshot {
  int rank = 0;
  std::string tenant;
  std::uint64_t total_recorded = 0;
  std::vector<FlightEvent> events;
};

/// Render snapshots + a metrics snapshot as the parseable text dump
/// format (header line `# insitu-flight/1 reason=...`, one `== rank R ==`
/// block per ring, one `key kind ...` line per metric).
std::string format_flight_dump(std::string_view reason,
                               const std::vector<FlightSnapshot>& rings,
                               const MetricsSnapshot& metrics);

}  // namespace insitu::obs::live
