#include "obs/live/telemetry_hub.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/live/hdr_histogram.hpp"

namespace insitu::obs::live {

namespace {

/// Process-wide hub for the best-effort fatal-signal dump path.
std::atomic<TelemetryHub*> g_signal_hub{nullptr};

extern "C" void telemetry_signal_handler(int sig) {
  // Best-effort crash path: dump_flight allocates and locks, neither of
  // which is async-signal-safe. On a genuinely corrupted heap this can
  // hang or re-fault; the re-raise below still terminates the process
  // with the original signal either way (docs/OBSERVABILITY.md).
  TelemetryHub* hub = g_signal_hub.exchange(nullptr);
  if (hub != nullptr) {
    (void)hub->dump_flight("signal");
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void atomic_add_double(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

std::string format_num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// CPU seconds consumed by the calling thread. Overhead self-accounting
/// uses CPU time, not wall time: a ticker thread preempted mid-tick by a
/// saturated carrier pool has done no extra telemetry work, and the
/// <= 2% budget gate should not charge it for the descheduling.
double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

Status parse_telemetry_config(const pal::Config& config,
                              TelemetryOptions& options) {
  options.interval_ms = static_cast<int>(
      config.get_int_or("health.interval_ms", options.interval_ms));
  if (options.interval_ms < 0) {
    return Status::InvalidArgument("health.interval_ms must be >= 0");
  }
  options.stream_path =
      config.get_string_or("health.stream", options.stream_path);
  options.dump_path = config.get_string_or("health.dump", options.dump_path);
  const std::int64_t flight_events = config.get_int_or(
      "health.flight_events",
      static_cast<std::int64_t>(options.flight_events));
  if (flight_events <= 0) {
    return Status::InvalidArgument("health.flight_events must be > 0");
  }
  options.flight_events = static_cast<std::size_t>(flight_events);
  return parse_health_rules(config, options.rules);
}

TelemetryHub::TelemetryHub(TelemetryOptions options)
    : options_(std::move(options)) {}

TelemetryHub::~TelemetryHub() { stop(); }

Status TelemetryHub::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::FailedPrecondition("hub already started");
  if (!options_.stream_path.empty()) {
    stream_.open(options_.stream_path, std::ios::trunc);
    if (!stream_) {
      return Status::Internal("cannot open telemetry stream " +
                              options_.stream_path);
    }
  }
  if (options_.install_signal_handler) {
    TelemetryHub* expected = nullptr;
    if (g_signal_hub.compare_exchange_strong(expected, this)) {
      std::signal(SIGSEGV, telemetry_signal_handler);
      std::signal(SIGBUS, telemetry_signal_handler);
      std::signal(SIGABRT, telemetry_signal_handler);
    }
  }
  started_ = true;
  if (options_.interval_ms > 0) {
    ticker_ = std::thread([this] { ticker_main(); });
  }
  return Status::Ok();
}

void TelemetryHub::stop() {
  {
    std::lock_guard<std::mutex> lock(ticker_mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  TelemetryHub* expected = this;
  g_signal_hub.compare_exchange_strong(expected, nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) tick_locked(/*final_frame=*/true);
  if (stream_.is_open()) stream_.close();
}

int TelemetryHub::register_source(int rank, std::string tenant,
                                  const MetricsRegistry* metrics,
                                  FlightRecorder* flight) {
  std::lock_guard<std::mutex> lock(mutex_);
  Source src;
  src.id = next_source_id_++;
  src.rank = rank;
  src.tenant = std::move(tenant);
  src.metrics = metrics;
  src.flight = flight;
  sources_.push_back(std::move(src));
  return sources_.back().id;
}

void TelemetryHub::unregister_source(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(sources_.begin(), sources_.end(),
                         [id](const Source& s) { return s.id == id; });
  if (it == sources_.end()) return;
  if (it->flight != nullptr) {
    FlightSnapshot retired;
    retired.rank = it->rank;
    retired.tenant = it->tenant;
    retired.total_recorded = it->flight->total_recorded();
    retired.events = it->flight->snapshot();
    retired_.push_back(std::move(retired));
    while (retired_.size() > options_.retired_rings) retired_.pop_front();
  }
  sources_.erase(it);
}

void TelemetryHub::set_alert_sink(AlertSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void TelemetryHub::tick_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  tick_locked(/*final_frame=*/false);
}

MetricsSnapshot TelemetryHub::aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_locked();
}

std::uint64_t TelemetryHub::frames_written() const {
  return frames_.load(std::memory_order_relaxed);
}

std::uint64_t TelemetryHub::alerts_fired() const {
  return alerts_.load(std::memory_order_relaxed);
}

std::uint64_t TelemetryHub::flight_dumps() const {
  return dumps_.load(std::memory_order_relaxed);
}

double TelemetryHub::busy_seconds() const {
  return busy_seconds_.load(std::memory_order_relaxed);
}

MetricsSnapshot TelemetryHub::aggregate_locked() const {
  MetricsSnapshot merged;
  for (const Source& src : sources_) {
    if (src.metrics == nullptr) continue;
    MetricsSnapshot snap = src.metrics->snapshot();
    if (!src.tenant.empty()) {
      for (MetricSample& sample : snap) {
        sample.key = metric_key_with_label(sample.key, "tenant", src.tenant);
      }
      std::sort(snap.begin(), snap.end(),
                [](const MetricSample& a, const MetricSample& b) {
                  return a.key < b.key;
                });
    }
    merge_into(merged, snap);
  }
  merge_into(merged, self_metrics_.snapshot());
  return merged;
}

std::vector<HealthAlert> TelemetryHub::evaluate_rules_locked(
    const MetricsSnapshot& merged) {
  std::vector<HealthAlert> fired;
  for (const HealthRule& rule : options_.rules) {
    for (const MetricSample& sample : merged) {
      if (!rule_matches_key(rule, sample.key)) continue;
      std::string stat;
      const double observed = rule_observed(rule, sample, &stat);
      const bool cond = rule_condition(rule, observed);
      bool& latch = latched_[{rule.name, sample.key}];
      if (!cond) {
        latch = false;  // re-arm
        continue;
      }
      if (latch) continue;  // already fired for this excursion
      latch = true;
      HealthAlert alert;
      alert.rule = rule.name;
      alert.key = sample.key;
      alert.stat = stat;
      alert.observed = observed;
      alert.threshold = rule.threshold;
      alert.action = rule.action;
      std::string name;
      Labels labels;
      if (parse_metric_key(sample.key, name, labels)) {
        for (const auto& [k, v] : labels) {
          if (k == "tenant") alert.tenant = v;
        }
      }
      fired.push_back(std::move(alert));
    }
  }
  return fired;
}

void TelemetryHub::append_frame_locked(const MetricsSnapshot& merged,
                                       const std::vector<HealthAlert>& alerts,
                                       bool final_frame) {
  if (!stream_.is_open()) return;
  std::ostringstream line;
  line << "{\"schema\":\"insitu-live/1\",\"frame\":" << frame_index_;
  if (final_frame) line << ",\"final\":true";
  line << ",\"series\":[";
  bool first = true;
  for (const MetricSample& s : merged) {
    if (!first) line << ',';
    first = false;
    line << "{\"key\":\"" << json_escape(s.key) << "\",\"kind\":\""
         << to_string(s.kind) << "\"";
    if (s.kind == MetricKind::kHistogram) {
      const HdrHistogram hdr = HdrHistogram::from_sample(s);
      line << ",\"count\":" << s.count << ",\"sum\":" << format_num(s.sum)
           << ",\"min\":" << format_num(s.min)
           << ",\"max\":" << format_num(s.max)
           << ",\"p50\":" << format_num(hdr.p50())
           << ",\"p99\":" << format_num(hdr.p99());
    } else {
      line << ",\"value\":" << format_num(s.value);
    }
    line << '}';
  }
  line << "],\"alerts\":[";
  first = true;
  for (const HealthAlert& a : alerts) {
    if (!first) line << ',';
    first = false;
    line << "{\"rule\":\"" << json_escape(a.rule) << "\",\"tenant\":\""
         << json_escape(a.tenant) << "\",\"key\":\"" << json_escape(a.key)
         << "\",\"stat\":\"" << a.stat
         << "\",\"observed\":" << format_num(a.observed)
         << ",\"threshold\":" << format_num(a.threshold)
         << ",\"action\":\"" << to_string(a.action) << "\"}";
  }
  line << "],\"overhead\":{\"busy_seconds\":"
       << format_num(busy_seconds_.load(std::memory_order_relaxed))
       << ",\"frames\":" << frames_.load(std::memory_order_relaxed)
       << ",\"sources\":" << sources_.size() << "}}\n";
  const std::string text = line.str();
  stream_ << text;
  stream_.flush();
  ++frame_index_;
  frames_.fetch_add(1, std::memory_order_relaxed);
  self_metrics_.counter("obs.overhead.frames").add(1);
  self_metrics_.counter("obs.overhead.bytes_written")
      .add(static_cast<std::int64_t>(text.size()));
}

void TelemetryHub::tick_locked(bool final_frame) {
  const double cpu0 = thread_cpu_seconds();
  self_metrics_.gauge("obs.overhead.sources")
      .set(static_cast<double>(sources_.size()));
  const MetricsSnapshot merged = aggregate_locked();
  const std::vector<HealthAlert> alerts = evaluate_rules_locked(merged);
  for (const HealthAlert& alert : alerts) {
    self_metrics_
        .counter("obs.health.alert",
                 {{"rule", alert.rule}, {"tenant", alert.tenant}})
        .add(1);
    alerts_.fetch_add(1, std::memory_order_relaxed);
    if (sink_) sink_(alert);
  }
  append_frame_locked(merged, alerts, final_frame);
  const double dt = thread_cpu_seconds() - cpu0;
  self_metrics_.histogram("obs.overhead.tick.seconds").record(dt);
  atomic_add_double(busy_seconds_, dt);
}

StatusOr<std::string> TelemetryHub::dump_flight(std::string_view reason) {
  const double cpu0 = thread_cpu_seconds();
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FlightSnapshot> rings;
    for (const Source& src : sources_) {
      if (src.flight == nullptr) continue;
      FlightSnapshot ring;
      ring.rank = src.rank;
      ring.tenant = src.tenant;
      ring.total_recorded = src.flight->total_recorded();
      ring.events = src.flight->snapshot();
      rings.push_back(std::move(ring));
    }
    for (const FlightSnapshot& retired : retired_) rings.push_back(retired);
    text = format_flight_dump(reason, rings, aggregate_locked());
    self_metrics_.counter("obs.flight.dumps").add(1);
    dumps_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!options_.dump_path.empty()) {
    std::ofstream out(options_.dump_path, std::ios::app);
    if (!out) {
      return Status::Internal("cannot open flight dump " +
                              options_.dump_path);
    }
    out << text;
  }
  atomic_add_double(busy_seconds_, thread_cpu_seconds() - cpu0);
  return text;
}

void TelemetryHub::ticker_main() {
  std::unique_lock<std::mutex> lock(ticker_mutex_);
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  while (!stop_requested_) {
    ticker_cv_.wait_for(lock, interval,
                        [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    tick_now();
    lock.lock();
  }
}

}  // namespace insitu::obs::live
