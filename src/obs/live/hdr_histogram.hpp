#pragma once

// Log-linear ("HDR-style") histogram for live latency aggregation.
//
// obs::Histogram keeps one bucket per power of two, which is cheap enough
// for always-on rank instrumentation but too coarse for a live status
// table (a p99 that can only move in 2x steps is not actionable). The
// TelemetryHub aggregates rank histograms into this structure instead:
// every power-of-two octave is subdivided into kSubBuckets linear
// sub-buckets, giving a bounded ~12% relative quantile error across the
// same dynamic range while staying mergeable (bucket-wise addition, the
// property the hub relies on to combine per-rank and per-tenant series).
//
// from_sample() converts a coarse MetricSample by crediting each pow-2
// bucket's count to the sub-bucket holding the bucket's geometric
// midpoint — quantiles of the result are resolution-limited by the
// source, but merge/quantile behave uniformly either way.

#include <array>
#include <cstdint>

#include "obs/metrics.hpp"

namespace insitu::obs::live {

/// Linear sub-buckets per power-of-two octave.
inline constexpr int kSubBuckets = 8;
inline constexpr int kHdrBuckets = kHistogramBuckets * kSubBuckets;

class HdrHistogram {
 public:
  void record(double value);
  void record_n(double value, std::uint64_t n);

  /// Add `other` bucket-wise; count/sum add, min/max widen.
  void merge(const HdrHistogram& other);

  /// Coarse pow-2 sample -> HDR (geometric-midpoint crediting).
  static HdrHistogram from_sample(const MetricSample& sample);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value estimate at quantile q in [0, 1]; linear interpolation inside
  /// the hit sub-bucket, clamped to [min, max]. 0.0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  // valid only when count_ > 0
  double max_ = 0.0;
  std::array<std::uint64_t, kHdrBuckets> buckets_{};
};

}  // namespace insitu::obs::live
