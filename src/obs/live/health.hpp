#pragma once

// Declarative health rules: watermark conditions over live metric
// snapshots, parsed from the `[health]` config section
// (docs/OBSERVABILITY.md, "Live telemetry & health rules").
//
// Rule grammar (one `rule.<name> = ...` key per rule):
//
//   rule.<name> = <metric> [<stat>] <op> <threshold> [action=<action>]
//
//   <metric>    bare metric name (`bridge.execute.seconds`, matches every
//               series with that name across label sets) or a full
//               serialized key (`service.admission{outcome=rejected}`,
//               exact match)
//   <stat>      value | count | sum | mean | min | max | p50 | p90 | p99
//               (default: value for counters/gauges, max for histograms)
//   <op>        > | >= | < | <=
//   <threshold> double
//   <action>    none | degrade | dump   (default none)
//
// The TelemetryHub evaluates rules each tick against the merged
// tenant-stamped snapshot; a firing rule emits an
// `obs.health.alert{rule=,tenant=}` counter and forwards a HealthAlert to
// the configured sink (the service maps action=degrade onto admission
// decisions and action=dump onto flight-recorder dumps). Firing is
// edge-triggered per (rule, series): the alert re-arms only after the
// condition reads false again.

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "pal/config.hpp"
#include "pal/status.hpp"

namespace insitu::obs::live {

enum class HealthAction { kNone, kDegrade, kDump };

const char* to_string(HealthAction action);

enum class HealthOp { kGt, kGe, kLt, kLe };

const char* to_string(HealthOp op);

struct HealthRule {
  std::string name;
  std::string metric;  // bare name or full serialized key
  std::string stat;    // empty = kind-dependent default
  HealthOp op = HealthOp::kGt;
  double threshold = 0.0;
  HealthAction action = HealthAction::kNone;
};

/// One rule firing against one concrete series.
struct HealthAlert {
  std::string rule;
  std::string tenant;  // series' tenant= label, empty if unlabeled
  std::string key;     // full series key that matched
  std::string stat;    // stat actually evaluated
  double observed = 0.0;
  double threshold = 0.0;
  HealthAction action = HealthAction::kNone;
};

/// Parse one rule body (the text after `rule.<name> =`).
Status parse_health_rule(std::string_view name, std::string_view text,
                              HealthRule& out);

/// Extract every `rule.*` key from the `[health]` section of `config`.
Status parse_health_rules(const pal::Config& config,
                               std::vector<HealthRule>& out);

/// Does `rule.metric` select this series key? Bare names match any label
/// set; keys with labels match exactly.
bool rule_matches_key(const HealthRule& rule, std::string_view key);

/// The stat value the rule evaluates for this sample (resolving the
/// kind-dependent default). Sets `*stat_name` to the resolved stat.
double rule_observed(const HealthRule& rule, const MetricSample& sample,
                     std::string* stat_name);

/// condition test: observed <op> threshold.
bool rule_condition(const HealthRule& rule, double observed);

}  // namespace insitu::obs::live
