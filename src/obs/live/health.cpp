#include "obs/live/health.hpp"

#include <charconv>

namespace insitu::obs::live {

namespace {

bool is_known_stat(std::string_view stat) {
  return stat == "value" || stat == "count" || stat == "sum" ||
         stat == "mean" || stat == "min" || stat == "max" || stat == "p50" ||
         stat == "p90" || stat == "p99";
}

bool parse_op(std::string_view token, HealthOp& op) {
  if (token == ">") op = HealthOp::kGt;
  else if (token == ">=") op = HealthOp::kGe;
  else if (token == "<") op = HealthOp::kLt;
  else if (token == "<=") op = HealthOp::kLe;
  else return false;
  return true;
}

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

const char* to_string(HealthAction action) {
  switch (action) {
    case HealthAction::kNone: return "none";
    case HealthAction::kDegrade: return "degrade";
    case HealthAction::kDump: return "dump";
  }
  return "?";
}

const char* to_string(HealthOp op) {
  switch (op) {
    case HealthOp::kGt: return ">";
    case HealthOp::kGe: return ">=";
    case HealthOp::kLt: return "<";
    case HealthOp::kLe: return "<=";
  }
  return "?";
}

Status parse_health_rule(std::string_view name, std::string_view text,
                         HealthRule& out) {
  const std::vector<std::string> tokens = tokenize(text);
  auto err = [&name, &text](const std::string& why) {
    return Status::InvalidArgument(
        "health rule '" + std::string(name) + "': " + why + " in \"" +
        std::string(text) + "\" (expected: <metric> [stat] <op> "
        "<threshold> [action=none|degrade|dump])");
  };
  if (tokens.size() < 3) return err("too few tokens");

  HealthRule rule;
  rule.name = std::string(name);
  std::size_t i = 0;
  rule.metric = tokens[i++];

  if (i < tokens.size() && is_known_stat(tokens[i])) {
    rule.stat = tokens[i++];
  }
  if (i >= tokens.size() || !parse_op(tokens[i], rule.op)) {
    return err("missing comparison operator (> >= < <=)");
  }
  ++i;
  if (i >= tokens.size()) return err("missing threshold");
  {
    const std::string& t = tokens[i];
    const char* end = t.data() + t.size();
    auto [ptr, ec] = std::from_chars(t.data(), end, rule.threshold);
    if (ec != std::errc() || ptr != end) {
      return err("threshold '" + t + "' is not a number");
    }
  }
  ++i;
  for (; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t.rfind("action=", 0) == 0) {
      const std::string_view a = std::string_view(t).substr(7);
      if (a == "none") rule.action = HealthAction::kNone;
      else if (a == "degrade") rule.action = HealthAction::kDegrade;
      else if (a == "dump") rule.action = HealthAction::kDump;
      else return err("unknown action '" + std::string(a) + "'");
    } else {
      return err("unexpected token '" + t + "'");
    }
  }
  out = std::move(rule);
  return Status::Ok();
}

Status parse_health_rules(const pal::Config& config,
                          std::vector<HealthRule>& out) {
  for (const std::string& key : config.keys_in_section("health")) {
    if (key.rfind("rule.", 0) != 0) continue;
    const std::string name = key.substr(5);
    if (name.empty()) {
      return Status::InvalidArgument("health rule with empty name");
    }
    const auto text = config.get_string("health." + key);
    if (!text.ok()) return text.status();
    HealthRule rule;
    if (Status s = parse_health_rule(name, *text, rule); !s.ok()) return s;
    out.push_back(std::move(rule));
  }
  return Status::Ok();
}

bool rule_matches_key(const HealthRule& rule, std::string_view key) {
  if (rule.metric == key) return true;
  if (rule.metric.find('{') != std::string::npos) return false;
  // Bare name: match `name` and `name{...}` for any label set.
  if (key.size() > rule.metric.size() &&
      key.compare(0, rule.metric.size(), rule.metric) == 0 &&
      key[rule.metric.size()] == '{') {
    return true;
  }
  return false;
}

double rule_observed(const HealthRule& rule, const MetricSample& sample,
                     std::string* stat_name) {
  std::string stat = rule.stat;
  if (stat.empty()) {
    stat = sample.kind == MetricKind::kHistogram ? "max" : "value";
  }
  if (stat_name != nullptr) *stat_name = stat;
  if (stat == "value") {
    // For histograms "value" degrades to the mean — counters and gauges
    // carry the actual value.
    return sample.kind == MetricKind::kHistogram ? sample.mean()
                                                 : sample.value;
  }
  if (stat == "count") return static_cast<double>(sample.count);
  if (stat == "sum") return sample.sum;
  if (stat == "mean") return sample.mean();
  if (stat == "min") return sample.min;
  if (stat == "max") return sample.max;
  if (stat == "p50") return histogram_quantile(sample, 0.50);
  if (stat == "p90") return histogram_quantile(sample, 0.90);
  if (stat == "p99") return histogram_quantile(sample, 0.99);
  return 0.0;
}

bool rule_condition(const HealthRule& rule, double observed) {
  switch (rule.op) {
    case HealthOp::kGt: return observed > rule.threshold;
    case HealthOp::kGe: return observed >= rule.threshold;
    case HealthOp::kLt: return observed < rule.threshold;
    case HealthOp::kLe: return observed <= rule.threshold;
  }
  return false;
}

}  // namespace insitu::obs::live
