#pragma once

// Metrics registry: named counters, gauges, and histograms with labels.
//
// Contract (docs/OBSERVABILITY.md): metric names are dotted lowercase
// paths, `<module>.<what>[.<unit>]`, e.g. `bridge.execute.seconds` or
// `comm.bytes_sent`. Labels qualify a series without changing its name:
// `backend.execute.seconds{backend=catalyst-slice}`. The serialized
// `name{k=v,...}` form — produced by metric_key() — is the identity of a
// series everywhere (registry keys, snapshots, CSV/JSON dumps).
//
// Concurrency model: instrument objects (Counter / Gauge / Histogram) are
// lock-free — every update is a relaxed atomic, so rank threads may share
// one registry or (the SPMD Runtime's arrangement) each own a private
// registry that is merged after join. Creating or looking up a series
// takes a mutex; hot paths should fetch the instrument reference once and
// reuse it (references are stable for the registry's lifetime).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace insitu::obs {

/// Label set for one series. Serialization sorts by label key, so the
/// order here never affects a series' identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Serialized series identity: `name` or `name{k=v,k2=v2}` with labels in
/// canonical (sorted) order regardless of insertion order. Label values
/// containing metachars (`,` `=` `{` `}` `"` `\`) are double-quoted with
/// backslash escapes — `name{k="a,b"}` — so keys always re-parse.
std::string metric_key(std::string_view name, const Labels& labels);

/// Inverse of metric_key(): split `name{k=v,...}` into the bare name and
/// its label pairs (quoted values are unescaped). Plain keys yield empty
/// labels. Returns false on malformed label syntax (the name is still
/// filled with the text before `{`).
bool parse_metric_key(std::string_view key, std::string& name,
                      Labels& labels);

/// Insert one label into an already-serialized key, keeping the result
/// canonical (`pool.hits` -> `pool.hits{tenant=t0}`, `x{b=1}` ->
/// `x{a=0,b=1}`). If the key already carries `label`, the existing value
/// wins and the key is returned unchanged. The multi-tenant service uses
/// this to stamp `tenant=` onto every series a session produced.
std::string metric_key_with_label(std::string_view key, std::string_view label,
                                  std::string_view value);

/// Monotonically increasing integer (bytes moved, messages sent, ...).
class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written double (queue depth, current bytes, ...). merge keeps max.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histograms bucket |value| into powers of two: bucket i covers
/// (2^(i-1+kMinExp), 2^(i+kMinExp)] with kMinExp = -34, so seconds from
/// ~58 ps to ~2^29 s and byte counts up to half a GiB land in distinct
/// buckets; bucket 0 additionally absorbs zero and negative samples.
inline constexpr int kHistogramBuckets = 64;
inline constexpr int kHistogramMinExp = -34;

/// Lock-free streaming histogram with exact count/sum/min/max.
class Histogram {
 public:
  void record(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0.0 when empty (same convention as pal::PhaseTimer).
  double min() const;
  double max() const;
  double mean() const;
  std::array<std::uint64_t, kHistogramBuckets> bucket_counts() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// Plain-value copy of one series, the unit of merge/export. `key` is the
/// metric_key() serialization.
struct MetricSample {
  std::string key;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;      // counter total or gauge value
  std::uint64_t count = 0; // histogram samples
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Snapshot of a whole registry, sorted by key.
using MetricsSnapshot = std::vector<MetricSample>;

/// Estimated value at quantile q in [0, 1] from the bucket counts
/// (geometric interpolation inside the hit bucket, clamped to [min, max]).
double histogram_quantile(const MetricSample& sample, double q);

/// Merge `src` into `dst` by key: counters and histogram stats add,
/// gauges keep the max, min/max widen. Kind mismatches keep dst's kind.
void merge_into(MetricsSnapshot& dst, const MetricsSnapshot& src);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {});

  MetricsSnapshot snapshot() const;

 private:
  template <typename T>
  T& intern(std::map<std::string, std::unique_ptr<T>>& into,
            std::string_view name, const Labels& labels);

  mutable std::mutex mutex_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace insitu::obs
