#include "obs/context.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace insitu::obs {

RankContext& context() {
  thread_local RankContext ctx;
  return ctx;
}

MetricsRegistry& fallback_metrics() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& metrics() {
  MetricsRegistry* installed = context().metrics;
  return installed != nullptr ? *installed : fallback_metrics();
}

TraceRecorder* tracer() { return context().trace; }

const char* to_string(Category category) {
  switch (category) {
    case Category::kSim: return "sim";
    case Category::kBridge: return "bridge";
    case Category::kBackend: return "backend";
    case Category::kComm: return "comm";
    case Category::kIo: return "io";
    case Category::kAnalysis: return "analysis";
    case Category::kOther: return "other";
  }
  return "?";
}

Category category_from_string(std::string_view name) {
  for (int i = 0; i < kCategoryCount; ++i) {
    const Category c = static_cast<Category>(i);
    if (name == to_string(c)) return c;
  }
  return Category::kOther;
}

}  // namespace insitu::obs
