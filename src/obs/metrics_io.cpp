#include "obs/metrics_io.hpp"

#include <cstdio>
#include <fstream>

#include "obs/chrome_trace.hpp"  // json_escape

namespace insitu::obs {

namespace {

std::string format_num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

/// CSV-quote a field if it contains a delimiter (metric label sets do).
std::string csv_field(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_rows(std::ostream& out, const std::string& run,
                    const MetricsSnapshot& snapshot) {
  for (const MetricSample& s : snapshot) {
    out << csv_field(run) << ',' << csv_field(s.key) << ','
        << to_string(s.kind) << ',';
    if (s.kind == MetricKind::kHistogram) {
      out << ',' << s.count << ',' << format_num(s.sum) << ','
          << format_num(s.mean()) << ',' << format_num(s.min) << ','
          << format_num(s.max) << ',' << format_num(histogram_quantile(s, 0.5))
          << ',' << format_num(histogram_quantile(s, 0.9)) << ','
          << format_num(histogram_quantile(s, 0.99));
    } else {
      out << format_num(s.value) << ",,,,,,,,";
    }
    out << '\n';
  }
}

void write_json_series(std::ostream& out, const std::string& run,
                       const MetricsSnapshot& snapshot, bool& first) {
  for (const MetricSample& s : snapshot) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"run\":\"" << json_escape(run) << "\",\"metric\":\""
        << json_escape(s.key) << "\",\"kind\":\"" << to_string(s.kind)
        << "\"";
    if (s.kind == MetricKind::kHistogram) {
      out << ",\"count\":" << s.count << ",\"sum\":" << format_num(s.sum)
          << ",\"mean\":" << format_num(s.mean())
          << ",\"min\":" << format_num(s.min)
          << ",\"max\":" << format_num(s.max)
          << ",\"p50\":" << format_num(histogram_quantile(s, 0.5))
          << ",\"p90\":" << format_num(histogram_quantile(s, 0.9))
          << ",\"p99\":" << format_num(histogram_quantile(s, 0.99));
    } else {
      out << ",\"value\":" << format_num(s.value);
    }
    out << "}";
  }
}

void write_meta_json(std::ostream& out, const ExportMeta& m) {
  out << "{\"tool\":\"" << json_escape(m.tool) << "\",\"config\":\""
      << json_escape(m.config) << "\",\"threads\":" << m.threads
      << ",\"seed\":" << m.seed << "}";
}

}  // namespace

void write_metrics_csv(std::ostream& out, std::span<const MetricsRun> runs,
                       const ExportMeta* meta) {
  if (meta != nullptr) {
    out << "# " << kMetricsSchema << " tool=" << meta->tool
        << " threads=" << meta->threads << " seed=" << meta->seed
        << " config=" << csv_field(meta->config) << '\n';
  }
  out << "run,metric,kind,value,count,sum,mean,min,max,p50,p90,p99\n";
  for (const MetricsRun& run : runs) {
    write_csv_rows(out, run.label, run.snapshot);
  }
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
  const MetricsRun run{"run0", snapshot};
  write_metrics_csv(out, std::span<const MetricsRun>(&run, 1));
}

Status write_metrics_csv_file(const std::string& path,
                              std::span<const MetricsRun> runs,
                              const ExportMeta* meta) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open metrics file: " + path);
  write_metrics_csv(out, runs, meta);
  out.flush();
  if (!out) return Status::Internal("short write to metrics file: " + path);
  return Status::Ok();
}

Status write_metrics_csv_file(const std::string& path,
                              const MetricsSnapshot& snapshot) {
  const MetricsRun run{"run0", snapshot};
  return write_metrics_csv_file(path, std::span<const MetricsRun>(&run, 1));
}

void write_metrics_json(std::ostream& out, std::span<const MetricsRun> runs,
                        const ExportMeta* meta) {
  if (meta != nullptr) {
    out << "{\"schema\":\"" << kMetricsSchema << "\",\"meta\":";
    write_meta_json(out, *meta);
    out << ",\"series\":";
  }
  out << "[\n";
  bool first = true;
  for (const MetricsRun& run : runs) {
    write_json_series(out, run.label, run.snapshot, first);
  }
  out << "\n]";
  if (meta != nullptr) out << "}";
  out << "\n";
}

Status write_metrics_json_file(const std::string& path,
                               std::span<const MetricsRun> runs,
                               const ExportMeta* meta) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open metrics file: " + path);
  write_metrics_json(out, runs, meta);
  out.flush();
  if (!out) return Status::Internal("short write to metrics file: " + path);
  return Status::Ok();
}

}  // namespace insitu::obs
