#pragma once

// Structured trace recorder: begin/end spans in both wall time and
// virtual (modeled cluster) time, one recorder per simulated rank.
//
// Instrumented code opens a RAII TraceScope; if no recorder is installed
// for the calling thread (tracing disabled, or code running outside the
// SPMD Runtime) the scope is a no-op costing two thread-local reads.
//
// Span naming contract (docs/OBSERVABILITY.md): `<module>.<operation>`,
// optionally suffixed with `:<instance>` for a specific backend/analysis,
// e.g. `bridge.execute`, `backend.execute:catalyst-slice`, `comm.barrier`.

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/context.hpp"

namespace insitu::obs {

/// Coarse span grouping, exported as the Chrome trace "cat" field.
enum class Category {
  kSim,      // miniapp / proxy-app compute
  kBridge,   // InSituBridge phases
  kBackend,  // backend execute stages
  kComm,     // communicator collectives / p2p
  kIo,       // file writers and readers
  kAnalysis, // analysis kernels
  kOther,
};

const char* to_string(Category category);

/// Number of Category values (array-index friendly: kSim..kOther are 0-6).
inline constexpr int kCategoryCount = 7;

/// Inverse of to_string(); unknown names map to Category::kOther.
Category category_from_string(std::string_view name);

/// Small numeric annotation attached to a span (bytes, counts, ...).
struct TraceArg {
  std::string key;
  double value = 0.0;
};

/// One completed span. Wall times are nanoseconds relative to the
/// recorder's epoch (install time); virtual times are absolute seconds on
/// the owning rank's virtual clock.
struct TraceEvent {
  std::string name;
  Category category = Category::kOther;
  int rank = 0;
  /// Nesting depth at construction (0 = top level on its track). Events
  /// are recorded in destruction (post-) order, so a track's stream plus
  /// depths reconstructs the span forest exactly (obs/analyze).
  int depth = 0;
  std::int64_t wall_begin_ns = 0;
  std::int64_t wall_dur_ns = 0;
  double virt_begin_s = 0.0;
  double virt_dur_s = 0.0;
  std::vector<TraceArg> args;
};

/// All spans of one run, in recording order per rank.
struct TraceLog {
  std::vector<TraceEvent> events;
  int nranks = 0;
};

/// Track id of rank r's async analysis worker: r + kWorkerTrackOffset.
/// The Chrome exporter names these tracks "rank r worker" and sorts them
/// after the rank tracks; nothing else may use rank ids in this range.
inline constexpr int kWorkerTrackOffset = 1000;

/// Per-rank span buffer. Thread-confined: only the owning rank thread
/// records; the Runtime harvests after join. A worker thread serving a
/// rank gets its *own* recorder (typically on track rank +
/// kWorkerTrackOffset, sharing the rank recorder's epoch so wall times
/// align) whose events the owner later merges back via absorb().
class TraceRecorder {
 public:
  using Epoch = std::chrono::steady_clock::time_point;

  explicit TraceRecorder(int rank)
      : TraceRecorder(rank, std::chrono::steady_clock::now()) {}
  TraceRecorder(int rank, Epoch epoch) : rank_(rank), epoch_(epoch) {}

  int rank() const { return rank_; }
  Epoch epoch() const { return epoch_; }

  std::int64_t wall_now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void record(TraceEvent event) {
    event.rank = rank_;
    events_.push_back(std::move(event));
  }

  /// Append events recorded elsewhere, keeping their own rank/track ids
  /// (unlike record(), which stamps this recorder's rank).
  void absorb(std::vector<TraceEvent> events) {
    events_.insert(events_.end(),
                   std::make_move_iterator(events.begin()),
                   std::make_move_iterator(events.end()));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> take_events() { return std::move(events_); }

 private:
  int rank_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
};

namespace detail {
/// Out-of-line flight-ring hooks (defined in live/flight_recorder.cpp) so
/// this header does not depend on the live module.
std::int64_t flight_wall_now_ns(const live::FlightRecorder* flight);
void flight_record(live::FlightRecorder* flight, const TraceEvent& event);
}  // namespace detail

/// RAII span guard. Construction snapshots wall + virtual begin times,
/// destruction records the completed event into the rank's recorder
/// and/or the rank's flight-recorder ring. With neither installed the
/// scope is a no-op costing two thread-local reads.
class TraceScope {
 public:
  TraceScope(Category category, const char* name)
      : TraceScope(category, std::string(name)) {}

  TraceScope(Category category, std::string name) {
    RankContext& ctx = context();
    recorder_ = ctx.trace;
    flight_ = ctx.flight;
    if (recorder_ == nullptr && flight_ == nullptr) return;
    event_.name = std::move(name);
    event_.category = category;
    event_.depth = ctx.span_depth++;
    // With both sinks active the recorder's epoch wins, so trace and
    // flight timestamps stay mutually comparable.
    event_.wall_begin_ns = recorder_ != nullptr
                               ? recorder_->wall_now_ns()
                               : detail::flight_wall_now_ns(flight_);
    event_.virt_begin_s = ctx.virtual_now();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attach a numeric annotation (no-op when tracing is disabled;
  /// flight events are fixed-size and carry no args).
  TraceScope& arg(const char* key, double value) {
    if (recorder_ != nullptr) event_.args.push_back({key, value});
    return *this;
  }

  bool active() const { return recorder_ != nullptr; }

  ~TraceScope() {
    if (recorder_ == nullptr && flight_ == nullptr) return;
    --context().span_depth;
    const std::int64_t wall_now = recorder_ != nullptr
                                      ? recorder_->wall_now_ns()
                                      : detail::flight_wall_now_ns(flight_);
    event_.wall_dur_ns = wall_now - event_.wall_begin_ns;
    event_.virt_dur_s = context().virtual_now() - event_.virt_begin_s;
    if (flight_ != nullptr) detail::flight_record(flight_, event_);
    if (recorder_ != nullptr) recorder_->record(std::move(event_));
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  live::FlightRecorder* flight_ = nullptr;
  TraceEvent event_;
};

}  // namespace insitu::obs
