#include "obs/analyze/baseline.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hpp"  // json_escape

namespace insitu::obs::analyze {

namespace {

std::string format_num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string phase_name(int category) {
  return to_string(static_cast<Category>(category));
}

}  // namespace

BaselineRun baseline_run_from_analysis(const std::string& label,
                                       const TraceAnalysis& analysis,
                                       std::uint64_t seed) {
  BaselineRun run;
  run.label = label;
  run.nranks = analysis.nranks;
  run.steps = analysis.step.steps;
  run.seed = seed;
  run.phase_s = analysis.step.per_step_s;
  for (double& phase : run.phase_s) {
    // Self times are differences; drop float dust so baselines stay clean.
    if (phase > -1e-12 && phase < 1e-12) phase = 0.0;
  }
  run.total_s = analysis.step.total();
  run.end_to_end_s = analysis.end_to_end_s();
  return run;
}

std::string write_baseline(const Baseline& baseline) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"" << kBaselineSchema << "\",\n"
      << "  \"tool\": \"" << json_escape(baseline.tool) << "\",\n"
      << "  \"config\": \"" << json_escape(baseline.config) << "\",\n"
      << "  \"threads\": " << baseline.threads << ",\n"
      << "  \"seed\": " << baseline.seed << ",\n"
      << "  \"runs\": [";
  bool first = true;
  for (const BaselineRun& run : baseline.runs) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"label\": \"" << json_escape(run.label)
        << "\", \"nranks\": " << run.nranks << ", \"steps\": " << run.steps
        << ", \"seed\": " << run.seed << ",\n     \"phases\": {";
    for (int c = 0; c < kCategoryCount; ++c) {
      if (c != 0) out << ", ";
      out << "\"" << phase_name(c) << "\": " << format_num(run.phase_s[c]);
    }
    out << "},\n     \"total_s\": " << format_num(run.total_s)
        << ", \"end_to_end_s\": " << format_num(run.end_to_end_s);
    if (run.has_pool) {
      out << ",\n     \"pool\": {\"hit_rate\": "
          << format_num(run.pool_hit_rate) << ", \"bytes_allocated\": "
          << format_num(run.pool_bytes_allocated) << ", \"bytes_reused\": "
          << format_num(run.pool_bytes_reused) << "}";
    }
    if (run.has_kernels) {
      out << ",\n     \"kernels\": {\"variant\": \""
          << json_escape(run.kernels_variant) << "\", \"elements\": {";
      bool first_kernel = true;
      for (const auto& [kernel, elements] : run.kernels_elements) {
        if (!first_kernel) out << ", ";
        first_kernel = false;
        out << "\"" << json_escape(kernel) << "\": " << format_num(elements);
      }
      out << "}}";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

Status write_baseline_file(const std::string& path,
                           const Baseline& baseline) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open baseline file: " + path);
  out << write_baseline(baseline);
  out.flush();
  if (!out) return Status::Internal("short write to baseline file: " + path);
  return Status::Ok();
}

bool is_baseline_json(const Json& root) {
  if (!root.is_object()) return false;
  const Json* schema = root.find("schema");
  return schema != nullptr && schema->kind == Json::Kind::kString &&
         schema->string == kBaselineSchema;
}

StatusOr<Baseline> read_baseline(std::string_view text) {
  INSITU_ASSIGN_OR_RETURN(Json root, parse_json(text));
  if (!is_baseline_json(root)) {
    // Distinguish "wrong schema VERSION" from "not a baseline at all":
    // a versioned mismatch is a FailedPrecondition the CLI maps to a
    // dedicated exit code with both versions named, so stale baselines
    // fail loudly instead of rendering an empty report.
    if (root.is_object()) {
      if (const Json* schema = root.find("schema");
          schema != nullptr && schema->kind == Json::Kind::kString &&
          schema->string.rfind("insitu-bench-baseline/", 0) == 0 &&
          schema->string != kBaselineSchema) {
        return Status::FailedPrecondition(
            "baseline schema version mismatch: file has \"" +
            schema->string + "\", this tool reads \"" +
            std::string(kBaselineSchema) +
            "\" — regenerate the baseline with the matching tool version");
      }
    }
    return Status::InvalidArgument(
        "not a baseline file (expected schema \"" +
        std::string(kBaselineSchema) + "\")");
  }
  Baseline out;
  out.tool = root.string_or("tool", "");
  out.config = root.string_or("config", "");
  out.threads = static_cast<int>(root.number_or("threads", 1));
  out.seed = static_cast<std::uint64_t>(root.number_or("seed", 0));
  const Json* runs = root.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return Status::InvalidArgument("baseline: missing runs array");
  }
  for (const Json& r : runs->array) {
    if (!r.is_object()) continue;
    BaselineRun run;
    run.label = r.string_or("label", "");
    run.nranks = static_cast<int>(r.number_or("nranks", 0));
    run.steps = static_cast<std::uint64_t>(r.number_or("steps", 0));
    run.seed = static_cast<std::uint64_t>(r.number_or("seed", 0));
    if (const Json* phases = r.find("phases"); phases != nullptr) {
      for (int c = 0; c < kCategoryCount; ++c) {
        run.phase_s[c] = phases->number_or(phase_name(c), 0.0);
      }
    }
    run.total_s = r.number_or("total_s", 0.0);
    run.end_to_end_s = r.number_or("end_to_end_s", 0.0);
    if (const Json* pool = r.find("pool");
        pool != nullptr && pool->is_object()) {
      run.has_pool = true;
      run.pool_hit_rate = pool->number_or("hit_rate", 0.0);
      run.pool_bytes_allocated = pool->number_or("bytes_allocated", 0.0);
      run.pool_bytes_reused = pool->number_or("bytes_reused", 0.0);
    }
    if (const Json* kern = r.find("kernels");
        kern != nullptr && kern->is_object()) {
      run.has_kernels = true;
      run.kernels_variant = kern->string_or("variant", "");
      if (const Json* elems = kern->find("elements");
          elems != nullptr && elems->is_object()) {
        for (const auto& [key, value] : elems->members) {
          if (value.kind == Json::Kind::kNumber) {
            run.kernels_elements.emplace_back(key, value.number);
          }
        }
      }
    }
    out.runs.push_back(std::move(run));
  }
  return out;
}

StatusOr<Baseline> read_baseline_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open baseline file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_baseline(buf.str());
}

namespace {

void check_value(const std::string& run, const std::string& phase,
                 double base, double current, const CheckOptions& options,
                 CheckResult& result) {
  if (base < options.min_phase_s) {
    if (current >= options.min_phase_s) {
      result.notes.push_back("note: " + run + "/" + phase +
                             " appeared (baseline ~0, now " +
                             format_num(current) + "s)");
    }
    return;
  }
  if (current > base * (1.0 + options.tolerance)) {
    result.regressions.push_back({run, phase, base, current});
  } else if (current < base * (1.0 - options.tolerance)) {
    result.notes.push_back("note: " + run + "/" + phase + " improved " +
                           format_num(base) + "s -> " + format_num(current) +
                           "s");
  }
}

}  // namespace

CheckResult check_baseline(const Baseline& base, const Baseline& current,
                           const CheckOptions& options) {
  CheckResult result;
  for (const BaselineRun& b : base.runs) {
    const BaselineRun* c = nullptr;
    for (const BaselineRun& candidate : current.runs) {
      if (candidate.label == b.label) {
        c = &candidate;
        break;
      }
    }
    if (c == nullptr) {
      result.mismatches.push_back("run missing from current results: " +
                                  b.label);
      continue;
    }
    if (c->nranks != b.nranks) {
      result.mismatches.push_back(
          b.label + ": rank count changed " + std::to_string(b.nranks) +
          " -> " + std::to_string(c->nranks));
    }
    if (c->steps != b.steps) {
      result.mismatches.push_back(
          b.label + ": step count changed " + std::to_string(b.steps) +
          " -> " + std::to_string(c->steps));
    }
    if (c->seed != b.seed) {
      result.notes.push_back("note: " + b.label + ": seed changed " +
                             std::to_string(b.seed) + " -> " +
                             std::to_string(c->seed));
    }
    for (int cat = 0; cat < kCategoryCount; ++cat) {
      check_value(b.label, phase_name(cat), b.phase_s[cat], c->phase_s[cat],
                  options, result);
    }
    check_value(b.label, "total", b.total_s, c->total_s, options, result);
    check_value(b.label, "end_to_end", b.end_to_end_s, c->end_to_end_s,
                options, result);
    // Pool hit rate gates in the opposite direction of time: lower is
    // worse. Allocated/reused bytes wobble with cross-rank interleaving at
    // the pool mutex, so they stay informational.
    if (b.has_pool && c->has_pool) {
      if (c->pool_hit_rate < b.pool_hit_rate * (1.0 - options.tolerance)) {
        result.regressions.push_back(
            {b.label, "pool.hit_rate", b.pool_hit_rate, c->pool_hit_rate});
      } else if (c->pool_hit_rate >
                 b.pool_hit_rate * (1.0 + options.tolerance)) {
        result.notes.push_back("note: " + b.label +
                               "/pool.hit_rate improved " +
                               format_num(b.pool_hit_rate) + " -> " +
                               format_num(c->pool_hit_rate));
      }
      if (c->pool_bytes_allocated >
          b.pool_bytes_allocated * (1.0 + options.tolerance)) {
        result.notes.push_back(
            "note: " + b.label + "/pool.bytes_allocated grew " +
            format_num(b.pool_bytes_allocated) + " -> " +
            format_num(c->pool_bytes_allocated));
      }
    } else if (b.has_pool && !c->has_pool) {
      result.mismatches.push_back(b.label +
                                  ": pool stats missing from current run");
    }
    // Kernel-dispatch stats are informational only: virtual time already
    // gates the result, so variant or element-count drift is worth a note
    // (the workload routed differently) but never fails the check.
    if (b.has_kernels && c->has_kernels) {
      if (c->kernels_variant != b.kernels_variant) {
        result.notes.push_back("note: " + b.label +
                               ": kernel variant changed " +
                               b.kernels_variant + " -> " +
                               c->kernels_variant);
      }
      for (const auto& [kernel, base_elems] : b.kernels_elements) {
        double cur_elems = 0.0;
        bool found = false;
        for (const auto& [ck, cv] : c->kernels_elements) {
          if (ck == kernel) {
            cur_elems = cv;
            found = true;
            break;
          }
        }
        if (!found) {
          result.notes.push_back("note: " + b.label + "/kernels." + kernel +
                                 " no longer called");
        } else if (cur_elems != base_elems) {
          result.notes.push_back("note: " + b.label + "/kernels." + kernel +
                                 " elements changed " +
                                 format_num(base_elems) + " -> " +
                                 format_num(cur_elems));
        }
      }
    } else if (b.has_kernels && !c->has_kernels) {
      result.notes.push_back("note: " + b.label +
                             ": kernel stats missing from current run");
    }
  }
  for (const BaselineRun& c : current.runs) {
    bool known = false;
    for (const BaselineRun& b : base.runs) {
      if (b.label == c.label) {
        known = true;
        break;
      }
    }
    if (!known) {
      result.notes.push_back("note: run not in baseline (skipped): " +
                             c.label);
    }
  }
  return result;
}

}  // namespace insitu::obs::analyze
