#include "obs/analyze/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace insitu::obs::analyze {

const Json* Json::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string
                                                  : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> run() {
    skip_ws();
    Json out;
    INSITU_RETURN_IF_ERROR(value(out));
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return out;
  }

 private:
  Status error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status value(Json& out) {
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        out.kind = Json::Kind::kString;
        return string(out.string);
      }
      case 't':
      case 'f': {
        const bool is_true = peek() == 't';
        const std::string_view want = is_true ? "true" : "false";
        if (text_.substr(pos_, want.size()) != want) {
          return error("bad literal");
        }
        pos_ += want.size();
        out.kind = Json::Kind::kBool;
        out.boolean = is_true;
        return Status::Ok();
      }
      case 'n':
        if (text_.substr(pos_, 4) != "null") return error("bad literal");
        pos_ += 4;
        out.kind = Json::Kind::kNull;
        return Status::Ok();
      default: return number(out);
    }
  }

  Status object(Json& out) {
    out.kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      INSITU_RETURN_IF_ERROR(string(key));
      skip_ws();
      if (peek() != ':') return error("expected ':'");
      ++pos_;
      skip_ws();
      Json member;
      INSITU_RETURN_IF_ERROR(value(member));
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Status::Ok();
      }
      return error("expected ',' or '}'");
    }
  }

  Status array(Json& out) {
    out.kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      skip_ws();
      Json element;
      INSITU_RETURN_IF_ERROR(value(element));
      out.array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      return error("expected ',' or ']'");
    }
  }

  Status string(std::string& out) {
    if (peek() != '"') return error("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape");
          }
          // Our exporters only \u-escape control characters (< 0x20);
          // anything else is passed through as raw UTF-8 already.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return error("unknown escape");
      }
    }
    if (pos_ >= text_.size()) return error("unterminated string");
    ++pos_;  // closing quote
    return Status::Ok();
  }

  Status number(Json& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.' ||
          c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return error("expected value");
    out.kind = Json::Kind::kNumber;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, out.number);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return error("bad number");
    }
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> parse_json(std::string_view text) {
  return Parser(text).run();
}

StatusOr<Json> parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open json file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_json(buf.str());
}

}  // namespace insitu::obs::analyze
