#pragma once

// Importers for the obs exports, making tools/perf_report a pure offline
// consumer: a Chrome-trace JSON written by write_chrome_trace() round-trips
// back into TraceRun logs, and a metrics CSV/JSON dump round-trips into a
// flat row table. Only files produced by this repo's exporters are
// supported (docs/OBSERVABILITY.md documents the formats).

#include <string>
#include <string_view>
#include <vector>

#include "obs/analyze/json.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export_meta.hpp"
#include "obs/metrics_io.hpp"
#include "pal/status.hpp"

namespace insitu::obs::analyze {

/// A parsed trace export: the recorded runs plus the embedded metadata
/// header (zero-valued when the file predates self-describing exports).
struct ImportedTrace {
  std::vector<TraceRun> runs;
  ExportMeta meta;
  bool has_meta = false;
};

StatusOr<ImportedTrace> import_chrome_trace(std::string_view text);
StatusOr<ImportedTrace> import_chrome_trace_file(const std::string& path);

/// One metrics series as exported: histogram rows carry count..p99,
/// counter/gauge rows carry `value` only (mirrors the CSV columns).
struct MetricsRow {
  std::string run;
  std::string metric;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  bool operator==(const MetricsRow&) const = default;
};

struct MetricsTable {
  std::vector<MetricsRow> rows;
  ExportMeta meta;
  bool has_meta = false;
};

/// Parse a metrics dump; the format (CSV vs JSON) is auto-detected from
/// the first non-space character.
StatusOr<MetricsTable> import_metrics(std::string_view text);
StatusOr<MetricsTable> import_metrics_file(const std::string& path);

/// The exporter-side view of a snapshot as rows (quantiles estimated the
/// same way the writers do), for round-trip comparisons: exporting `runs`
/// and importing the bytes yields exactly rows_from_runs(runs) after one
/// trip through the exporter's number formatting.
std::vector<MetricsRow> rows_from_runs(std::span<const MetricsRun> runs);

/// Re-serialize a parsed table in the exporter's CSV format; importing a
/// CSV dump and re-emitting it reproduces the input byte-for-byte.
std::string metrics_table_to_csv(const MetricsTable& table);

}  // namespace insitu::obs::analyze
