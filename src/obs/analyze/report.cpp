#include "obs/analyze/report.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "pal/table.hpp"

namespace insitu::obs::analyze {

namespace {

using pal::TablePrinter;

std::string ms(double seconds) {
  double value = seconds * 1e3;
  // Self times are differences; keep float dust from rendering as "-0".
  if (value > -0.5e-6 && value < 0.5e-6) value = 0.0;
  return TablePrinter::num(value, 6);
}

std::string pct(double fraction) {
  return TablePrinter::num(fraction * 100.0, 1) + "%";
}

/// Dominant parent of a span, e.g. "bridge.execute (12)".
std::string top_parent(const SpanStat& span) {
  const ParentStat* best = nullptr;
  for (const ParentStat& p : span.parents) {
    if (best == nullptr || p.virt_s > best->virt_s) best = &p;
  }
  if (best == nullptr) return "-";
  return best->parent + " (" + std::to_string(best->count) + ")";
}

}  // namespace

AnalyzedRun analyze_run(const TraceRun& run) {
  AnalyzedRun out;
  out.label = run.label;
  out.analysis = analyze_trace(run.log);
  out.overlaps = rank_overlaps(run.log);
  out.critical = critical_path(run.log);
  return out;
}

std::vector<AnalyzedRun> analyze_runs(std::span<const TraceRun> runs) {
  std::vector<AnalyzedRun> out;
  out.reserve(runs.size());
  for (const TraceRun& run : runs) out.push_back(analyze_run(run));
  return out;
}

std::string render_breakdown_table(std::span<const AnalyzedRun> runs,
                                   const ReportOptions& /*options*/) {
  TablePrinter table("per-step breakdown (virtual ms, mean per rank)");
  std::vector<std::string> header = {"configuration", "ranks", "steps"};
  for (int c = 0; c < kCategoryCount; ++c) {
    header.push_back(to_string(static_cast<Category>(c)));
  }
  header.push_back("total");
  header.push_back("end-to-end s");
  table.set_header(std::move(header));
  for (const AnalyzedRun& run : runs) {
    const TraceAnalysis& a = run.analysis;
    std::vector<std::string> row = {run.label, std::to_string(a.nranks),
                                    std::to_string(a.step.steps)};
    for (int c = 0; c < kCategoryCount; ++c) {
      row.push_back(ms(a.step.per_step_s[c]));
    }
    row.push_back(ms(a.step.total()));
    row.push_back(TablePrinter::num(a.end_to_end_s(), 6));
    table.add_row(std::move(row));
  }
  table.add_note(
      "total = per-step sim + analysis time; phases are self virtual time "
      "from the miniapp.step / bridge.execute span trees");
  return table.to_string();
}

std::string render_span_table(const AnalyzedRun& run,
                              const ReportOptions& options) {
  std::vector<const SpanStat*> order;
  double self_sum = 0.0;
  for (const SpanStat& s : run.analysis.spans) {
    order.push_back(&s);
    self_sum += s.self_virt_s;
  }
  std::sort(order.begin(), order.end(),
            [](const SpanStat* a, const SpanStat* b) {
              if (a->self_virt_s != b->self_virt_s) {
                return a->self_virt_s > b->self_virt_s;
              }
              return a->name < b->name;
            });
  if (options.top_spans != 0 && order.size() > options.top_spans) {
    order.resize(options.top_spans);
  }

  TablePrinter table("spans: " + run.label);
  std::vector<std::string> header = {"span",    "cat",     "count",
                                     "total s", "self s",  "self %",
                                     "mean ms", "top parent"};
  if (options.wall) header.insert(header.begin() + 7, "wall ms");
  table.set_header(std::move(header));
  for (const SpanStat* s : order) {
    std::vector<std::string> row = {
        s->name,
        to_string(s->category),
        std::to_string(s->count),
        TablePrinter::num(s->total_virt_s, 6),
        TablePrinter::num(s->self_virt_s, 6),
        pct(self_sum <= 0.0 ? 0.0 : s->self_virt_s / self_sum),
        ms(s->mean_virt_s()),
        top_parent(*s)};
    if (options.wall) {
      row.insert(row.begin() + 7,
                 TablePrinter::num(
                     static_cast<double>(s->total_wall_ns) / 1e6, 3));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string render_overlap_report(const AnalyzedRun& run,
                                  const ReportOptions& /*options*/) {
  std::ostringstream out;
  if (!run.overlaps.empty()) {
    TablePrinter table("async overlap: " + run.label);
    table.set_header({"rank", "sim busy s", "worker busy s", "overlap s",
                      "hidden", "end s"});
    for (const RankOverlap& o : run.overlaps) {
      table.add_row({std::to_string(o.rank),
                     TablePrinter::num(o.sim_busy_s, 6),
                     TablePrinter::num(o.worker_busy_s, 6),
                     TablePrinter::num(o.overlap_s, 6),
                     pct(o.overlap_fraction()),
                     TablePrinter::num(o.end_s, 6)});
    }
    table.add_note("hidden = overlap / worker busy (fraction of analysis "
                   "cost absorbed by the simulation plane)");
    out << table.to_string();
  }

  const CriticalPath& cp = run.critical;
  if (!cp.segments.empty()) {
    TablePrinter table("critical path: " + run.label + " (rank " +
                       std::to_string(cp.rank) + ")");
    table.set_header({"segment", "plane", "count", "virtual s", "share"});
    for (const CriticalSegment& seg : cp.segments) {
      table.add_row({seg.name, seg.worker ? "worker" : "sim",
                     std::to_string(seg.count),
                     TablePrinter::num(seg.virt_s, 6),
                     pct(cp.end_s <= 0.0 ? 0.0 : seg.virt_s / cp.end_s)});
    }
    table.add_note("segments partition [0, " +
                   TablePrinter::num(cp.end_s, 6) +
                   "] s on the last-finishing rank; worker-plane spans "
                   "take precedence over sim-plane spans");
    out << table.to_string();
  }
  return out.str();
}

std::string render_pool_table(const MetricsTable& metrics) {
  // One row per run, in first-appearance order.
  struct PoolRow {
    std::string run;
    double hit_rate = 0.0, hits = 0.0, misses = 0.0, evictions = 0.0;
    double bytes_allocated = 0.0, bytes_reused = 0.0;
  };
  std::vector<PoolRow> rows;
  auto row_for = [&rows](const std::string& run) -> PoolRow& {
    for (PoolRow& row : rows) {
      if (row.run == run) return row;
    }
    rows.push_back(PoolRow{run, 0, 0, 0, 0, 0, 0});
    return rows.back();
  };
  for (const MetricsRow& row : metrics.rows) {
    if (row.metric.rfind("pool.", 0) != 0) continue;
    PoolRow& pool = row_for(row.run);
    if (row.metric == "pool.hit_rate") pool.hit_rate = row.value;
    else if (row.metric == "pool.hits") pool.hits = row.value;
    else if (row.metric == "pool.misses") pool.misses = row.value;
    else if (row.metric == "pool.evictions") pool.evictions = row.value;
    else if (row.metric == "pool.bytes_allocated")
      pool.bytes_allocated = row.value;
    else if (row.metric == "pool.bytes_reused")
      pool.bytes_reused = row.value;
  }
  if (rows.empty()) return "";

  constexpr double kMiB = 1024.0 * 1024.0;
  TablePrinter table("buffer pool");
  table.set_header({"run", "hit rate", "hits", "misses", "evictions",
                    "alloc MiB", "reused MiB"});
  for (const PoolRow& row : rows) {
    table.add_row({row.run, TablePrinter::num(row.hit_rate, 3),
                   TablePrinter::num(row.hits, 0),
                   TablePrinter::num(row.misses, 0),
                   TablePrinter::num(row.evictions, 0),
                   TablePrinter::num(row.bytes_allocated / kMiB, 3),
                   TablePrinter::num(row.bytes_reused / kMiB, 3)});
  }
  table.add_note("pal::BufferPool per-run deltas; alloc = fresh bytes on "
                 "misses, reused = request bytes served by the free list");
  return table.to_string();
}

std::string render_kernel_table(const MetricsTable& metrics) {
  // One row per (run, kernel, variant) series, in first-appearance
  // order. Keys look like "kernels.elements{kernel=dot,variant=simd}".
  struct KernelRow {
    std::string run, kernel, variant;
    double calls = 0.0, elements = 0.0, bytes = 0.0;
  };
  std::vector<KernelRow> rows;
  auto row_for = [&rows](const std::string& run, const std::string& kernel,
                         const std::string& variant) -> KernelRow& {
    for (KernelRow& row : rows) {
      if (row.run == run && row.kernel == kernel &&
          row.variant == variant) {
        return row;
      }
    }
    rows.push_back(KernelRow{run, kernel, variant, 0, 0, 0});
    return rows.back();
  };
  auto label_value = [](const obs::Labels& labels,
                        std::string_view key) -> std::string {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return "";
  };
  for (const MetricsRow& row : metrics.rows) {
    if (row.metric.rfind("kernels.", 0) != 0) continue;
    std::string field;
    obs::Labels labels;
    if (!obs::parse_metric_key(row.metric, field, labels) || labels.empty()) {
      continue;
    }
    const std::string kernel = label_value(labels, "kernel");
    const std::string variant = label_value(labels, "variant");
    if (kernel.empty() || variant.empty()) continue;
    KernelRow& cell = row_for(row.run, kernel, variant);
    if (field == "kernels.calls") cell.calls = row.value;
    else if (field == "kernels.elements") cell.elements = row.value;
    else if (field == "kernels.bytes") cell.bytes = row.value;
  }
  if (rows.empty()) return "";

  constexpr double kMiB = 1024.0 * 1024.0;
  TablePrinter table("kernel dispatch");
  table.set_header({"run", "kernel", "variant", "calls", "elements",
                    "MiB touched"});
  for (const KernelRow& row : rows) {
    table.add_row({row.run, row.kernel, row.variant,
                   TablePrinter::num(row.calls, 0),
                   TablePrinter::num(row.elements, 0),
                   TablePrinter::num(row.bytes / kMiB, 3)});
  }
  table.add_note("per-run deltas from kernels::stats_snapshot(); variants "
                 "are bit-identical for integer kernels and ULP-bounded "
                 "for transcendentals (docs/PERFORMANCE.md)");
  return table.to_string();
}

std::string render_tenant_table(const MetricsTable& metrics) {
  // One row per (run, tenant). Keys look like
  // "service.admission{outcome=admitted,tenant=t0}" or
  // "bridge.execute.seconds{tenant=t0}".
  struct TenantRow {
    std::string run, tenant;
    double admitted = 0.0, queued = 0.0, degraded = 0.0, rejected = 0.0;
    double completed = 0.0, failed = 0.0;
    double steps = 0.0, p99_step = 0.0;
    double high_water = 0.0;
  };
  std::vector<TenantRow> rows;
  auto row_for = [&rows](const std::string& run,
                         const std::string& tenant) -> TenantRow& {
    for (TenantRow& row : rows) {
      if (row.run == run && row.tenant == tenant) return row;
    }
    rows.push_back(TenantRow{run, tenant});
    return rows.back();
  };
  auto label_value = [](const obs::Labels& labels,
                        std::string_view key) -> std::string {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return "";
  };
  for (const MetricsRow& row : metrics.rows) {
    std::string field;
    obs::Labels labels;
    if (!obs::parse_metric_key(row.metric, field, labels) || labels.empty()) {
      continue;
    }
    const std::string tenant = label_value(labels, "tenant");
    if (tenant.empty()) continue;
    TenantRow& cell = row_for(row.run, tenant);
    if (field == "service.admission") {
      const std::string outcome = label_value(labels, "outcome");
      if (outcome == "admitted") cell.admitted = row.value;
      else if (outcome == "queued") cell.queued = row.value;
      else if (outcome == "degraded") cell.degraded = row.value;
      else if (outcome == "rejected") cell.rejected = row.value;
    } else if (field == "service.sessions") {
      const std::string state = label_value(labels, "state");
      if (state == "completed") cell.completed = row.value;
      else if (state == "failed") cell.failed = row.value;
    } else if (field == "bridge.execute.seconds") {
      cell.steps = static_cast<double>(row.count);
      cell.p99_step = row.p99;
    } else if (field == "service.tenant.mem_high_water_bytes") {
      cell.high_water = row.value;
    }
  }
  if (rows.empty()) return "";

  constexpr double kMiB = 1024.0 * 1024.0;
  TablePrinter table("tenants");
  table.set_header({"run", "tenant", "admitted", "queued", "degraded",
                    "rejected", "completed", "failed", "steps",
                    "p99 step ms", "HW MiB"});
  for (const TenantRow& row : rows) {
    table.add_row({row.run, row.tenant, TablePrinter::num(row.admitted, 0),
                   TablePrinter::num(row.queued, 0),
                   TablePrinter::num(row.degraded, 0),
                   TablePrinter::num(row.rejected, 0),
                   TablePrinter::num(row.completed, 0),
                   TablePrinter::num(row.failed, 0),
                   TablePrinter::num(row.steps, 0),
                   TablePrinter::num(row.p99_step * 1000.0, 3),
                   TablePrinter::num(row.high_water / kMiB, 3)});
  }
  table.add_note("per-tenant admission outcomes and session results from "
                 "`tenant=`-labeled series; p99 step is the virtual "
                 "bridge.execute.seconds quantile (docs/SERVICE.md)");
  return table.to_string();
}

std::string render_collectives_table(const MetricsTable& metrics) {
  // One row per (run, engine, op), in first-appearance order. Keys look
  // like "comm.collective.calls{engine=tree,op=allgather}". Contributed
  // bytes are joined from the run's engine-agnostic
  // "comm.bytes_sent{op=...}" counters; allreduce bytes fold into the
  // reduce row because both run through the one reduce rendezvous op.
  struct CollRow {
    std::string run, engine, op;
    double calls = 0.0;
    double waits = 0.0, wait_sum = 0.0, wait_p99 = 0.0;
    double contended = 0.0;
    double bytes = 0.0;
  };
  std::vector<CollRow> rows;
  auto row_for = [&rows](const std::string& run, const std::string& engine,
                         const std::string& op) -> CollRow& {
    for (CollRow& row : rows) {
      if (row.run == run && row.engine == engine && row.op == op) return row;
    }
    rows.push_back(CollRow{run, engine, op});
    return rows.back();
  };
  auto label_value = [](const obs::Labels& labels,
                        std::string_view key) -> std::string {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return "";
  };
  struct BytesRow {
    std::string run, op;
    double bytes = 0.0;
  };
  std::vector<BytesRow> bytes_rows;
  for (const MetricsRow& row : metrics.rows) {
    std::string field;
    obs::Labels labels;
    if (!obs::parse_metric_key(row.metric, field, labels) || labels.empty()) {
      continue;
    }
    if (field == "comm.bytes_sent") {
      const std::string op = label_value(labels, "op");
      if (!op.empty() && op != "p2p") {
        bytes_rows.push_back(BytesRow{row.run, op, row.value});
      }
      continue;
    }
    if (field.rfind("comm.collective.", 0) != 0) continue;
    const std::string engine = label_value(labels, "engine");
    const std::string op = label_value(labels, "op");
    if (engine.empty() || op.empty()) continue;
    CollRow& cell = row_for(row.run, engine, op);
    if (field == "comm.collective.calls") {
      cell.calls = row.value;
    } else if (field == "comm.collective.wait.seconds") {
      cell.waits = static_cast<double>(row.count);
      cell.wait_sum = row.sum;
      cell.wait_p99 = row.p99;
    } else if (field == "comm.collective.contended") {
      cell.contended = row.value;
    }
  }
  if (rows.empty()) return "";

  auto bytes_for = [&bytes_rows](const std::string& run,
                                 std::string_view op) -> double {
    double total = 0.0;
    for (const BytesRow& b : bytes_rows) {
      if (b.run == run && (b.op == op ||
                           (op == "reduce" && b.op == "allreduce"))) {
        total += b.bytes;
      }
    }
    return total;
  };
  constexpr double kMiB = 1024.0 * 1024.0;
  TablePrinter table("collectives");
  table.set_header({"run", "engine", "op", "calls", "MiB sent", "waits",
                    "wait s", "wait p99 ms", "contended"});
  for (CollRow& row : rows) {
    row.bytes = bytes_for(row.run, row.op);
    table.add_row({row.run, row.engine, row.op,
                   TablePrinter::num(row.calls, 0),
                   TablePrinter::num(row.bytes / kMiB, 3),
                   TablePrinter::num(row.waits, 0),
                   TablePrinter::num(row.wait_sum, 3),
                   TablePrinter::num(row.wait_p99 * 1000.0, 3),
                   TablePrinter::num(row.contended, 0)});
  }
  table.add_note("per-rank totals from comm.collective.*; wait columns "
                 "are real wall seconds parked at the rendezvous (count "
                 "of waits that blocked, their sum, p99), contended = "
                 "slot try_lock misses (docs/SCALING.md)");
  return table.to_string();
}

std::string render_reduction_table(const MetricsTable& metrics) {
  // One row per (run, backend, variable). Per-variable series carry
  // both labels ("io.reduction.bytes_in{backend=flexpath,variable=data}");
  // the encode histogram and the adaptive transition counters are
  // backend-scoped and folded into every variable row of that backend.
  struct ReductionRow {
    std::string run, backend, variable;
    double level = -1.0;
    double bytes_in = 0.0, bytes_out = 0.0;
  };
  struct BackendStats {
    std::string run, backend;
    double encode_p99 = 0.0;
    double raises = 0.0, lowers = 0.0;
  };
  std::vector<ReductionRow> rows;
  std::vector<BackendStats> backends;
  auto row_for = [&rows](const std::string& run, const std::string& backend,
                         const std::string& variable) -> ReductionRow& {
    for (ReductionRow& row : rows) {
      if (row.run == run && row.backend == backend &&
          row.variable == variable) {
        return row;
      }
    }
    rows.push_back(ReductionRow{run, backend, variable});
    return rows.back();
  };
  auto backend_for = [&backends](const std::string& run,
                                 const std::string& backend) -> BackendStats& {
    for (BackendStats& b : backends) {
      if (b.run == run && b.backend == backend) return b;
    }
    backends.push_back(BackendStats{run, backend});
    return backends.back();
  };
  auto label_value = [](const obs::Labels& labels,
                        std::string_view key) -> std::string {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return "";
  };
  for (const MetricsRow& row : metrics.rows) {
    std::string field;
    obs::Labels labels;
    if (!obs::parse_metric_key(row.metric, field, labels) || labels.empty()) {
      continue;
    }
    if (field.rfind("io.reduction.", 0) != 0) continue;
    const std::string backend = label_value(labels, "backend");
    if (backend.empty()) continue;
    const std::string variable = label_value(labels, "variable");
    if (field == "io.reduction.level") {
      row_for(row.run, backend, variable).level = row.value;
    } else if (field == "io.reduction.bytes_in") {
      row_for(row.run, backend, variable).bytes_in = row.value;
    } else if (field == "io.reduction.bytes_out") {
      row_for(row.run, backend, variable).bytes_out = row.value;
    } else if (field == "io.reduction.encode.seconds") {
      backend_for(row.run, backend).encode_p99 = row.p99;
    } else if (field == "io.reduction.raises") {
      backend_for(row.run, backend).raises = row.value;
    } else if (field == "io.reduction.lowers") {
      backend_for(row.run, backend).lowers = row.value;
    }
  }
  if (rows.empty()) return "";

  // Gauge values mirror io::ReductionLevel; named locally so the trace
  // analyzer stays independent of the io library.
  auto level_name = [](double level) -> std::string {
    switch (static_cast<int>(level)) {
      case 0: return "none";
      case 1: return "delta";
      case 2: return "subsample";
      case 3: return "quantize";
      default: return level < 0.0 ? "?" : TablePrinter::num(level, 0);
    }
  };
  constexpr double kMiB = 1024.0 * 1024.0;
  TablePrinter table("in transit reduction");
  table.set_header({"run", "backend", "variable", "level", "in MiB",
                    "out MiB", "ratio", "encode p99 ms", "raises", "lowers"});
  for (const ReductionRow& row : rows) {
    const BackendStats& stats = backend_for(row.run, row.backend);
    table.add_row(
        {row.run, row.backend, row.variable, level_name(row.level),
         TablePrinter::num(row.bytes_in / kMiB, 3),
         TablePrinter::num(row.bytes_out / kMiB, 3),
         row.bytes_out > 0.0
             ? TablePrinter::num(row.bytes_in / row.bytes_out, 2) + "x"
             : "-",
         TablePrinter::num(stats.encode_p99 * 1000.0, 4),
         TablePrinter::num(stats.raises, 0),
         TablePrinter::num(stats.lowers, 0)});
  }
  table.add_note("level = last applied per variable (gauge); raises/lowers "
                 "count adaptive controller transitions per backend "
                 "(docs/PERFORMANCE.md \"In transit data reduction\")");
  return table.to_string();
}

std::string render_report(std::span<const AnalyzedRun> runs,
                          const ExportMeta* meta,
                          const ReportOptions& options) {
  std::ostringstream out;
  if (meta != nullptr) {
    out << "# " << kTraceSchema << " tool=" << meta->tool
        << " threads=" << meta->threads << " seed=" << meta->seed << "\n";
    if (!meta->config.empty()) out << "# config: " << meta->config << "\n";
    out << "\n";
  }
  out << render_breakdown_table(runs, options);
  for (const AnalyzedRun& run : runs) {
    if (options.spans) out << "\n" << render_span_table(run, options);
    if (options.overlap && run.analysis.has_worker_tracks()) {
      out << "\n" << render_overlap_report(run, options);
    }
  }
  return out.str();
}

}  // namespace insitu::obs::analyze
