#include "obs/analyze/import.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace insitu::obs::analyze {

namespace {

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Same fixed formatting as the exporters (metrics_io.cpp), so parsed
/// values re-serialize byte-identically.
std::string format_num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string csv_field(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

double parse_double(std::string_view text) {
  double out = 0.0;
  std::from_chars(text.data(), text.data() + text.size(), out);
  return out;
}

std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t out = 0;
  std::from_chars(text.data(), text.data() + text.size(), out);
  return out;
}

/// One pass through the exporter's formatting: what a value looks like
/// after being written and parsed back.
double format_roundtrip(double value) { return parse_double(format_num(value)); }

ExportMeta meta_from_json(const Json& meta) {
  ExportMeta out;
  out.tool = meta.string_or("tool", "");
  out.config = meta.string_or("config", "");
  out.threads = static_cast<int>(meta.number_or("threads", 1));
  out.seed = static_cast<std::uint64_t>(meta.number_or("seed", 0));
  return out;
}

// ---------------------------------------------------------------------------
// Chrome trace import

/// Fallback depth reconstruction for exports without per-span depth args
/// (include_args=false): per track, events are in post-order, so an event
/// adopts every trailing unclaimed event whose begin lies inside it.
void assign_depths(std::vector<TraceEvent*>& track) {
  struct Node {
    TraceEvent* event;
    std::vector<Node> children;
  };
  std::vector<Node> pending;
  for (TraceEvent* e : track) {
    Node node{e, {}};
    while (!pending.empty() &&
           pending.back().event->virt_begin_s >= e->virt_begin_s) {
      node.children.insert(node.children.begin(), std::move(pending.back()));
      pending.pop_back();
    }
    pending.push_back(std::move(node));
  }
  // Iterative DFS from the roots, assigning depths.
  std::vector<std::pair<const Node*, int>> stack;
  for (const Node& root : pending) stack.push_back({&root, 0});
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    node->event->depth = depth;
    for (const Node& child : node->children) {
      stack.push_back({&child, depth + 1});
    }
  }
}

}  // namespace

StatusOr<ImportedTrace> import_chrome_trace(std::string_view text) {
  INSITU_ASSIGN_OR_RETURN(Json root, parse_json(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("trace import: root is not an object");
  }
  ImportedTrace out;
  if (const Json* meta = root.find("metadata"); meta != nullptr) {
    if (const Json* schema = meta->find("schema");
        schema != nullptr && schema->kind == Json::Kind::kString &&
        schema->string.rfind("insitu-trace/", 0) == 0 &&
        schema->string != kTraceSchema) {
      return Status::FailedPrecondition(
          "trace schema version mismatch: dump has \"" + schema->string +
          "\", this tool reads \"" + std::string(kTraceSchema) +
          "\" — re-export the trace with the matching tool version");
    }
    out.meta = meta_from_json(*meta);
    out.has_meta = true;
  }
  const Json* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("trace import: missing traceEvents array");
  }

  std::map<int, TraceRun> runs;          // pid -> run (map: sorted by pid)
  std::map<int, int> named_rank_tracks;  // pid -> "rank N" metadata count
  bool all_have_depth = true;
  for (const Json& e : events->array) {
    if (!e.is_object()) continue;
    const std::string ph = e.string_or("ph", "");
    const int pid = static_cast<int>(e.number_or("pid", 1));
    TraceRun& run = runs[pid];
    if (ph == "M") {
      const std::string what = e.string_or("name", "");
      const Json* args = e.find("args");
      const std::string name =
          args != nullptr ? args->string_or("name", "") : "";
      if (what == "process_name") {
        run.label = name;
      } else if (what == "thread_name" &&
                 name.rfind("rank ", 0) == 0 &&
                 name.find("worker") == std::string::npos) {
        ++named_rank_tracks[pid];
      }
      continue;
    }
    if (ph != "X") continue;
    TraceEvent event;
    event.name = e.string_or("name", "");
    event.category = category_from_string(e.string_or("cat", "other"));
    event.rank = static_cast<int>(e.number_or("tid", 0));
    const Json* args = e.find("args");
    const double ts_s = e.number_or("ts", 0.0) / 1e6;
    const double dur_s = e.number_or("dur", 0.0) / 1e6;
    if (args != nullptr && args->find("virtual_s") != nullptr) {
      // Args carry the full-precision times; ts/dur are rounded to 1e-3 us.
      event.virt_begin_s = args->number_or("virtual_s", ts_s);
      event.virt_dur_s = args->number_or("virtual_dur_s", dur_s);
      event.wall_begin_ns = static_cast<std::int64_t>(
          args->number_or("wall_ms", 0.0) * 1e6);
      event.wall_dur_ns = static_cast<std::int64_t>(
          args->number_or("wall_dur_ms", 0.0) * 1e6);
    } else {
      event.virt_begin_s = ts_s;
      event.virt_dur_s = dur_s;
    }
    if (args != nullptr && args->find("depth") != nullptr) {
      event.depth = static_cast<int>(args->number_or("depth", 0));
    } else {
      event.depth = -1;
      all_have_depth = false;
    }
    if (args != nullptr) {
      for (const auto& [key, value] : args->members) {
        if (key == "depth" || key == "virtual_s" || key == "virtual_dur_s" ||
            key == "wall_ms" || key == "wall_dur_ms") {
          continue;
        }
        if (value.kind == Json::Kind::kNumber) {
          event.args.push_back({key, value.number});
        }
      }
    }
    run.log.events.push_back(std::move(event));
  }

  for (auto& [pid, run] : runs) {
    int nranks = named_rank_tracks[pid];
    for (const TraceEvent& e : run.log.events) {
      if (e.rank < kWorkerTrackOffset) nranks = std::max(nranks, e.rank + 1);
    }
    run.log.nranks = nranks;
    if (!all_have_depth) {
      std::map<int, std::vector<TraceEvent*>> tracks;
      for (TraceEvent& e : run.log.events) tracks[e.rank].push_back(&e);
      for (auto& [track, events_in_track] : tracks) {
        assign_depths(events_in_track);
      }
    }
    out.runs.push_back(std::move(run));
  }
  return out;
}

StatusOr<ImportedTrace> import_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return import_chrome_trace(buf.str());
}

// ---------------------------------------------------------------------------
// Metrics import

namespace {

/// Split one CSV line honoring the exporter's quoting rules.
std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return out;
}

StatusOr<MetricKind> kind_from_string(std::string_view kind) {
  if (kind == "counter") return MetricKind::kCounter;
  if (kind == "gauge") return MetricKind::kGauge;
  if (kind == "histogram") return MetricKind::kHistogram;
  return Status::InvalidArgument("metrics import: unknown kind '" +
                                 std::string(kind) + "'");
}

/// `# insitu-metrics/1 tool=X threads=N seed=S config=...` (config runs to
/// end of line, CSV-quoted when it contains a delimiter).
ExportMeta parse_csv_meta(std::string_view line) {
  ExportMeta meta;
  const auto take = [&](std::string_view key) -> std::string {
    const std::string token = std::string(key) + "=";
    const std::size_t pos = line.find(token);
    if (pos == std::string_view::npos) return "";
    std::string_view rest = line.substr(pos + token.size());
    if (key == "config") {
      if (!rest.empty() && rest.front() == '"') {
        return split_csv_line(rest)[0];
      }
      return std::string(rest);
    }
    const std::size_t end = rest.find(' ');
    return std::string(rest.substr(0, end));
  };
  meta.tool = take("tool");
  meta.threads = static_cast<int>(parse_u64(take("threads")));
  if (meta.threads < 1) meta.threads = 1;
  meta.seed = parse_u64(take("seed"));
  meta.config = take("config");
  return meta;
}

StatusOr<MetricsTable> import_metrics_csv(std::string_view text) {
  MetricsTable out;
  std::size_t pos = 0;
  bool header_seen = false;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;
    if (line.front() == '#') {
      // `# insitu-metrics/N ...`: a wrong N is a versioned-schema
      // mismatch (exit 2 in perf_report), not a silent empty table.
      const std::string_view body = trim_view(line.substr(1));
      if (body.rfind("insitu-metrics/", 0) == 0 &&
          body.substr(0, std::string_view(kMetricsSchema).size()) !=
              kMetricsSchema) {
        const std::size_t end = body.find(' ');
        return Status::FailedPrecondition(
            "metrics schema version mismatch: dump has \"" +
            std::string(body.substr(0, end)) + "\", this tool reads \"" +
            std::string(kMetricsSchema) +
            "\" — re-export the dump with the matching tool version");
      }
      out.meta = parse_csv_meta(line);
      out.has_meta = true;
      continue;
    }
    if (!header_seen) {
      if (line.rfind("run,metric,kind", 0) != 0) {
        return Status::InvalidArgument("metrics import: bad CSV header");
      }
      header_seen = true;
      continue;
    }
    const std::vector<std::string> fields = split_csv_line(line);
    if (fields.size() < 4) {
      return Status::InvalidArgument("metrics import: short CSV row");
    }
    MetricsRow row;
    row.run = fields[0];
    row.metric = fields[1];
    INSITU_ASSIGN_OR_RETURN(row.kind, kind_from_string(fields[2]));
    const auto field = [&](std::size_t i) -> std::string_view {
      return i < fields.size() ? std::string_view(fields[i])
                               : std::string_view();
    };
    if (row.kind == MetricKind::kHistogram) {
      row.count = parse_u64(field(4));
      row.sum = parse_double(field(5));
      row.mean = parse_double(field(6));
      row.min = parse_double(field(7));
      row.max = parse_double(field(8));
      row.p50 = parse_double(field(9));
      row.p90 = parse_double(field(10));
      row.p99 = parse_double(field(11));
    } else {
      row.value = parse_double(field(3));
    }
    out.rows.push_back(std::move(row));
  }
  if (!header_seen) {
    return Status::InvalidArgument("metrics import: empty CSV");
  }
  return out;
}

StatusOr<MetricsTable> import_metrics_json(std::string_view text) {
  INSITU_ASSIGN_OR_RETURN(Json root, parse_json(text));
  MetricsTable out;
  const Json* series = &root;
  if (root.is_object()) {
    if (const Json* schema = root.find("schema");
        schema != nullptr && schema->kind == Json::Kind::kString &&
        schema->string.rfind("insitu-metrics/", 0) == 0 &&
        schema->string != kMetricsSchema) {
      return Status::FailedPrecondition(
          "metrics schema version mismatch: dump has \"" + schema->string +
          "\", this tool reads \"" + std::string(kMetricsSchema) +
          "\" — re-export the dump with the matching tool version");
    }
    if (const Json* meta = root.find("meta"); meta != nullptr) {
      out.meta = meta_from_json(*meta);
      out.has_meta = true;
    }
    series = root.find("series");
    if (series == nullptr) {
      return Status::InvalidArgument("metrics import: missing series array");
    }
  }
  if (!series->is_array()) {
    return Status::InvalidArgument("metrics import: series is not an array");
  }
  for (const Json& s : series->array) {
    if (!s.is_object()) continue;
    MetricsRow row;
    row.run = s.string_or("run", "");
    row.metric = s.string_or("metric", "");
    INSITU_ASSIGN_OR_RETURN(row.kind,
                            kind_from_string(s.string_or("kind", "")));
    if (row.kind == MetricKind::kHistogram) {
      row.count = static_cast<std::uint64_t>(s.number_or("count", 0));
      row.sum = s.number_or("sum", 0.0);
      row.mean = s.number_or("mean", 0.0);
      row.min = s.number_or("min", 0.0);
      row.max = s.number_or("max", 0.0);
      row.p50 = s.number_or("p50", 0.0);
      row.p90 = s.number_or("p90", 0.0);
      row.p99 = s.number_or("p99", 0.0);
    } else {
      row.value = s.number_or("value", 0.0);
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace

StatusOr<MetricsTable> import_metrics(std::string_view text) {
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (c == '[' || c == '{') return import_metrics_json(text);
    break;
  }
  return import_metrics_csv(text);
}

StatusOr<MetricsTable> import_metrics_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open metrics file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return import_metrics(buf.str());
}

std::vector<MetricsRow> rows_from_runs(std::span<const MetricsRun> runs) {
  std::vector<MetricsRow> out;
  for (const MetricsRun& run : runs) {
    for (const MetricSample& s : run.snapshot) {
      MetricsRow row;
      row.run = run.label;
      row.metric = s.key;
      row.kind = s.kind;
      if (s.kind == MetricKind::kHistogram) {
        row.count = s.count;
        row.sum = format_roundtrip(s.sum);
        row.mean = format_roundtrip(s.mean());
        row.min = format_roundtrip(s.min);
        row.max = format_roundtrip(s.max);
        row.p50 = format_roundtrip(histogram_quantile(s, 0.5));
        row.p90 = format_roundtrip(histogram_quantile(s, 0.9));
        row.p99 = format_roundtrip(histogram_quantile(s, 0.99));
      } else {
        row.value = format_roundtrip(s.value);
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

std::string metrics_table_to_csv(const MetricsTable& table) {
  std::ostringstream out;
  if (table.has_meta) {
    const ExportMeta& m = table.meta;
    out << "# " << kMetricsSchema << " tool=" << m.tool
        << " threads=" << m.threads << " seed=" << m.seed
        << " config=" << csv_field(m.config) << '\n';
  }
  out << "run,metric,kind,value,count,sum,mean,min,max,p50,p90,p99\n";
  for (const MetricsRow& row : table.rows) {
    out << csv_field(row.run) << ',' << csv_field(row.metric) << ','
        << to_string(row.kind) << ',';
    if (row.kind == MetricKind::kHistogram) {
      out << ',' << row.count << ',' << format_num(row.sum) << ','
          << format_num(row.mean) << ',' << format_num(row.min) << ','
          << format_num(row.max) << ',' << format_num(row.p50) << ','
          << format_num(row.p90) << ',' << format_num(row.p99);
    } else {
      out << format_num(row.value) << ",,,,,,,,";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace insitu::obs::analyze
