#pragma once

// Text rendering for trace analyses: the paper-style breakdown tables
// (pal/table format, same as the bench binaries print) built from
// obs/analyze results. Used by tools/perf_report and by the benches'
// --baseline writers.
//
// Default output is deterministic: only virtual-time quantities are
// printed, so a report is byte-identical across hosts and `threads=N`
// settings. ReportOptions::wall adds wall-clock columns for profiling
// this implementation itself.

#include <span>
#include <string>
#include <vector>

#include "obs/analyze/analyze.hpp"
#include "obs/analyze/import.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export_meta.hpp"

namespace insitu::obs::analyze {

/// One run, fully analyzed: aggregation, overlap rows, critical path.
struct AnalyzedRun {
  std::string label;
  TraceAnalysis analysis;
  std::vector<RankOverlap> overlaps;  ///< empty for sync runs
  CriticalPath critical;
};

AnalyzedRun analyze_run(const TraceRun& run);
std::vector<AnalyzedRun> analyze_runs(std::span<const TraceRun> runs);

struct ReportOptions {
  bool spans = true;     ///< per-span aggregation section
  bool overlap = true;   ///< overlap + critical path for async runs
  bool wall = false;     ///< add wall-clock columns (nondeterministic)
  std::size_t top_spans = 0;  ///< span rows per run, 0 = all
};

/// Paper-style table: one row per run/configuration, per-step virtual
/// milliseconds split by phase; "total" reproduces the bench-reported
/// step time (per-step sim + per-step analysis).
std::string render_breakdown_table(std::span<const AnalyzedRun> runs,
                                   const ReportOptions& options = {});

/// Per-span aggregation for one run: self/total virtual time, counts,
/// and the dominant parent. Rows sorted by self time (desc), then name.
std::string render_span_table(const AnalyzedRun& run,
                              const ReportOptions& options = {});

/// Sim/worker overlap per rank plus the aggregated critical-path walk.
std::string render_overlap_report(const AnalyzedRun& run,
                                  const ReportOptions& options = {});

/// Buffer-pool summary distilled from `pool.*` metric rows, one line per
/// run (hit rate, allocation traffic, evictions). Returns the empty
/// string when the dump carries no pool metrics, so callers can append it
/// unconditionally.
std::string render_pool_table(const MetricsTable& metrics);

/// Kernel-dispatch summary distilled from the labeled
/// `kernels.{calls,elements,bytes}{kernel=...,variant=...}` counter rows:
/// one line per (run, kernel, variant) series that was actually called.
/// Returns the empty string when the dump carries no kernel metrics, so
/// callers can append it unconditionally.
std::string render_kernel_table(const MetricsTable& metrics);

/// Per-tenant summary distilled from `tenant=`-labeled rows (the
/// multi-tenant service stamps the label on every session metric):
/// admission outcomes, session terminal states, executed steps, p99 step
/// latency, and the tenant memory high-water gauge. One line per
/// (run, tenant). Returns the empty string when the dump carries no
/// tenant-labeled metrics, so callers can append it unconditionally.
std::string render_tenant_table(const MetricsTable& metrics);

/// Collective-engine summary distilled from the
/// `comm.collective.{calls,wait.seconds,contended}{engine=...,op=...}`
/// series the communicator records: one line per (run, engine, op) with
/// call counts, contributed bytes (joined from the run's
/// `comm.bytes_sent{op=}` counters), wall seconds parked at the
/// rendezvous, and contended slot-lock acquisitions. Returns the empty
/// string when the dump carries no collective metrics, so callers can
/// append it unconditionally.
std::string render_collectives_table(const MetricsTable& metrics);

/// In transit reduction summary distilled from the `io.reduction.*`
/// series the ReductionPipeline publishes: one line per
/// (run, backend, variable) with the last-applied level, bytes in/out,
/// the compression ratio, and the backend's encode-time p99 plus
/// adaptive raise/lower transition counts. Returns the empty string
/// when the dump carries no reduction metrics, so callers can append it
/// unconditionally.
std::string render_reduction_table(const MetricsTable& metrics);

/// Full report: metadata header, breakdown table, then per-run sections.
std::string render_report(std::span<const AnalyzedRun> runs,
                          const ExportMeta* meta = nullptr,
                          const ReportOptions& options = {});

}  // namespace insitu::obs::analyze
