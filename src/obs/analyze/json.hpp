#pragma once

// Minimal recursive-descent JSON parser for the obs exports: enough for
// the Chrome-trace files, metrics JSON dumps, and bench baselines this
// repo writes (objects, arrays, strings with the exporter's escapes,
// numbers, true/false/null). Not a general-purpose JSON library — inputs
// are trusted files produced by our own exporters.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pal/status.hpp"

namespace insitu::obs::analyze {

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  /// Object members in file order (duplicate keys keep the first).
  std::vector<std::pair<std::string, Json>> members;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup; nullptr when not an object or the key is absent.
  const Json* find(std::string_view key) const;

  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
};

/// Parse a complete JSON document (trailing whitespace allowed).
StatusOr<Json> parse_json(std::string_view text);

/// Slurp + parse a JSON file.
StatusOr<Json> parse_json_file(const std::string& path);

}  // namespace insitu::obs::analyze
