#include "obs/analyze/analyze.hpp"

#include <algorithm>
#include <cstddef>

namespace insitu::obs::analyze {

namespace {

/// A top-level (depth 0) span on one track, in begin order.
struct TopInterval {
  double begin = 0.0;
  double end = 0.0;
  const std::string* name = nullptr;
};

/// Accumulators shared by whole-log and single-track aggregation.
struct Accumulator {
  std::map<std::string, SpanStat> spans;
  // (child name, parent name) -> edge stats; parent "-" = top level.
  std::map<std::pair<std::string, std::string>, ParentStat> edges;

  std::vector<SpanStat> finalize() {
    for (auto& [key, edge] : edges) {
      edge.parent = key.second;
      spans[key.first].parents.push_back(edge);
    }
    std::vector<SpanStat> out;
    out.reserve(spans.size());
    for (auto& [name, stat] : spans) {
      stat.name = name;
      out.push_back(std::move(stat));
    }
    return out;  // map order == sorted by name; parents sorted likewise
  }
};

/// Sweeps one track's events (post-order + depth) once, recovering the
/// span forest exactly: an event at depth d adopts every unclaimed event
/// at depth d+1 as a direct child.
class TrackSweep {
 public:
  TrackSweep(int track, Accumulator& acc) : track_(track), acc_(acc) {
    stat_.track = track;
  }

  void add(const TraceEvent& e) {
    const std::size_t d = static_cast<std::size_t>(e.depth < 0 ? 0 : e.depth);
    if (pending_.size() <= d + 1) pending_.resize(d + 2);

    double child_total = 0.0;
    for (const Child& c : pending_[d + 1]) {
      child_total += c.virt_dur_s;
      ParentStat& edge = acc_.edges[{*c.name, e.name}];
      ++edge.count;
      edge.virt_s += c.virt_dur_s;
    }
    pending_[d + 1].clear();
    const double self = e.virt_dur_s - child_total;

    SpanStat& stat = acc_.spans[e.name];
    stat.category = e.category;
    ++stat.count;
    stat.total_virt_s += e.virt_dur_s;
    stat.self_virt_s += self;
    stat.total_wall_ns += e.wall_dur_ns;

    const auto cat = static_cast<std::size_t>(e.category);
    stat_.self_virt_s[cat] += self;
    window_[cat] += self;

    if (first_) {
      stat_.begin_s = e.virt_begin_s;
      first_ = false;
    } else {
      stat_.begin_s = std::min(stat_.begin_s, e.virt_begin_s);
    }
    stat_.end_s = std::max(stat_.end_s, e.virt_begin_s + e.virt_dur_s);

    pending_[d].push_back({&e.name, e.virt_dur_s});
    if (e.depth <= 0) close_top(e);
  }

  /// Flush top-level parent edges; returns the per-track stats.
  TrackStat finish() {
    if (!pending_.empty()) {
      for (const Child& c : pending_[0]) {
        ParentStat& edge = acc_.edges[{*c.name, "-"}];
        ++edge.count;
        edge.virt_s += c.virt_dur_s;
      }
      pending_[0].clear();
    }
    return stat_;
  }

  const std::vector<TopInterval>& top_intervals() const { return tops_; }
  const std::array<double, kCategoryCount>& step_window() const {
    return step_window_;
  }
  /// Steps on this track: miniapp.step count for executed sims,
  /// bridge.execute count for post hoc (staged) pipelines.
  std::uint64_t steps() const { return std::max(sim_steps_, exec_steps_); }

 private:
  struct Child {
    const std::string* name;
    double virt_dur_s;
  };

  void close_top(const TraceEvent& e) {
    stat_.traced_virt_s += e.virt_dur_s;
    tops_.push_back({e.virt_begin_s, e.virt_begin_s + e.virt_dur_s, &e.name});
    // Per-step work: the subtree of a top-level event is exactly the
    // events accumulated into the window since the previous top close.
    // Step trees: the simulation's step, the bridge's execute, and the
    // top-level post hoc reads/writes around them (fig11/fig12
    // workflows; in situ runs nest io under bridge.execute instead).
    const bool is_step = e.name == "miniapp.step" ||
                         e.name == "bridge.execute" ||
                         e.name.rfind("io.read_step", 0) == 0 ||
                         e.name.rfind("io.write_step", 0) == 0;
    if (is_step) {
      for (int c = 0; c < kCategoryCount; ++c) {
        step_window_[static_cast<std::size_t>(c)] +=
            window_[static_cast<std::size_t>(c)];
      }
      if (e.name == "miniapp.step") ++sim_steps_;
      if (e.name == "bridge.execute") ++exec_steps_;
    }
    window_ = {};
  }

  int track_;
  Accumulator& acc_;
  TrackStat stat_;
  bool first_ = true;
  std::vector<std::vector<Child>> pending_;
  std::vector<TopInterval> tops_;
  std::array<double, kCategoryCount> window_{};
  std::array<double, kCategoryCount> step_window_{};
  std::uint64_t sim_steps_ = 0;
  std::uint64_t exec_steps_ = 0;
};

/// Per-track event pointers in record (post-) order.
std::map<int, std::vector<const TraceEvent*>> split_tracks(
    const TraceLog& log) {
  std::map<int, std::vector<const TraceEvent*>> out;
  for (const TraceEvent& e : log.events) out[e.rank].push_back(&e);
  return out;
}

double busy_seconds(const std::vector<TopInterval>& intervals) {
  double sum = 0.0;
  for (const TopInterval& i : intervals) sum += i.end - i.begin;
  return sum;
}

/// Intersection time of two begin-sorted, non-overlapping interval lists.
double overlap_seconds(const std::vector<TopInterval>& a,
                       const std::vector<TopInterval>& b) {
  double sum = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].begin, b[j].begin);
    const double hi = std::min(a[i].end, b[j].end);
    if (hi > lo) sum += hi - lo;
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

}  // namespace

double StepBreakdown::total() const {
  double sum = 0.0;
  for (const double v : per_step_s) sum += v;
  return sum;
}

std::array<double, kCategoryCount> TraceAnalysis::mean_rank_phase_s() const {
  std::array<double, kCategoryCount> out{};
  int n = 0;
  for (const TrackStat& t : tracks) {
    if (t.is_worker()) continue;
    ++n;
    for (int c = 0; c < kCategoryCount; ++c) {
      out[static_cast<std::size_t>(c)] +=
          t.self_virt_s[static_cast<std::size_t>(c)];
    }
  }
  if (n > 0) {
    for (double& v : out) v /= n;
  }
  return out;
}

std::array<double, kCategoryCount> TraceAnalysis::mean_worker_phase_s() const {
  std::array<double, kCategoryCount> out{};
  int n = 0;
  for (const TrackStat& t : tracks) {
    if (!t.is_worker()) continue;
    ++n;
    for (int c = 0; c < kCategoryCount; ++c) {
      out[static_cast<std::size_t>(c)] +=
          t.self_virt_s[static_cast<std::size_t>(c)];
    }
  }
  if (n > 0) {
    for (double& v : out) v /= n;
  }
  return out;
}

double TraceAnalysis::mean_rank_traced_s() const {
  double sum = 0.0;
  int n = 0;
  for (const TrackStat& t : tracks) {
    if (t.is_worker()) continue;
    sum += t.traced_virt_s;
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

double TraceAnalysis::end_to_end_s() const {
  double out = 0.0;
  for (const TrackStat& t : tracks) out = std::max(out, t.end_s);
  return out;
}

bool TraceAnalysis::has_worker_tracks() const {
  for (const TrackStat& t : tracks) {
    if (t.is_worker()) return true;
  }
  return false;
}

TraceAnalysis analyze_trace(const TraceLog& log) {
  TraceAnalysis out;
  out.nranks = log.nranks;

  Accumulator acc;
  std::array<double, kCategoryCount> step_sum{};
  std::uint64_t max_steps = 0;
  int step_tracks = 0;
  for (const auto& [track, events] : split_tracks(log)) {
    TrackSweep sweep(track, acc);
    for (const TraceEvent* e : events) sweep.add(*e);
    out.tracks.push_back(sweep.finish());
    if (track < kWorkerTrackOffset && sweep.steps() > 0) {
      ++step_tracks;
      max_steps = std::max(max_steps, sweep.steps());
      for (int c = 0; c < kCategoryCount; ++c) {
        step_sum[static_cast<std::size_t>(c)] +=
            sweep.step_window()[static_cast<std::size_t>(c)];
      }
    }
  }
  out.spans = acc.finalize();
  out.step.steps = max_steps;
  if (step_tracks > 0 && max_steps > 0) {
    const double denom = static_cast<double>(step_tracks) *
                         static_cast<double>(max_steps);
    for (int c = 0; c < kCategoryCount; ++c) {
      out.step.per_step_s[static_cast<std::size_t>(c)] =
          step_sum[static_cast<std::size_t>(c)] / denom;
    }
  }
  return out;
}

std::vector<SpanStat> aggregate_track_spans(const TraceLog& log, int track) {
  Accumulator acc;
  TrackSweep sweep(track, acc);
  for (const TraceEvent& e : log.events) {
    if (e.rank == track) sweep.add(e);
  }
  sweep.finish();
  return acc.finalize();
}

std::vector<RankOverlap> rank_overlaps(const TraceLog& log) {
  std::vector<RankOverlap> out;
  Accumulator acc;  // discarded; the sweep also yields top intervals
  std::map<int, std::vector<TopInterval>> tops;
  for (const auto& [track, events] : split_tracks(log)) {
    TrackSweep sweep(track, acc);
    for (const TraceEvent* e : events) sweep.add(*e);
    sweep.finish();
    tops[track] = sweep.top_intervals();
  }
  for (const auto& [track, intervals] : tops) {
    if (track < kWorkerTrackOffset) continue;
    const int rank = track - kWorkerTrackOffset;
    RankOverlap o;
    o.rank = rank;
    o.worker_busy_s = busy_seconds(intervals);
    const auto sim = tops.find(rank);
    if (sim != tops.end()) {
      o.sim_busy_s = busy_seconds(sim->second);
      o.overlap_s = overlap_seconds(sim->second, intervals);
      if (!sim->second.empty()) o.end_s = sim->second.back().end;
    }
    if (!intervals.empty()) o.end_s = std::max(o.end_s, intervals.back().end);
    out.push_back(o);
  }
  return out;
}

CriticalPath critical_path(const TraceLog& log) {
  CriticalPath out;
  Accumulator acc;
  std::map<int, std::vector<TopInterval>> tops;
  for (const auto& [track, events] : split_tracks(log)) {
    TrackSweep sweep(track, acc);
    for (const TraceEvent* e : events) sweep.add(*e);
    sweep.finish();
    tops[track] = sweep.top_intervals();
  }

  // The run ends when the last track goes quiet; that track's rank owns
  // the critical path.
  int last_track = 0;
  for (const auto& [track, intervals] : tops) {
    if (intervals.empty()) continue;
    if (out.end_s == 0.0 || intervals.back().end > out.end_s) {
      out.end_s = intervals.back().end;
      last_track = track;
    }
  }
  out.rank = last_track >= kWorkerTrackOffset
                 ? last_track - kWorkerTrackOffset
                 : last_track;

  const std::vector<TopInterval> empty;
  const auto find_or_empty = [&](int track) -> const std::vector<TopInterval>& {
    const auto it = tops.find(track);
    return it == tops.end() ? empty : it->second;
  };
  const std::vector<TopInterval>& sim = find_or_empty(out.rank);
  const std::vector<TopInterval>& worker =
      find_or_empty(out.rank + kWorkerTrackOffset);

  // Boundary sweep over [0, end]: worker span wins, then sim span, then
  // idle. Deterministic, and segment durations sum to end_s exactly.
  std::vector<double> bounds{0.0, out.end_s};
  for (const auto* list : {&sim, &worker}) {
    for (const TopInterval& i : *list) {
      bounds.push_back(i.begin);
      bounds.push_back(i.end);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  std::map<std::pair<std::string, bool>, CriticalSegment> segments;
  std::size_t si = 0, wi = 0;
  const TopInterval* last_attr = nullptr;
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    const double lo = bounds[b];
    const double hi = bounds[b + 1];
    if (lo >= out.end_s) break;
    while (wi < worker.size() && worker[wi].end <= lo) ++wi;
    while (si < sim.size() && sim[si].end <= lo) ++si;
    const TopInterval* cover = nullptr;
    bool is_worker = false;
    if (wi < worker.size() && worker[wi].begin <= lo) {
      cover = &worker[wi];
      is_worker = true;
    } else if (si < sim.size() && sim[si].begin <= lo) {
      cover = &sim[si];
    }
    const std::string name = cover != nullptr ? *cover->name : "(idle)";
    CriticalSegment& seg = segments[{name, is_worker}];
    seg.name = name;
    seg.worker = is_worker;
    seg.virt_s += std::min(hi, out.end_s) - lo;
    if (cover != last_attr || cover == nullptr) ++seg.count;
    last_attr = cover;
  }

  for (auto& [key, seg] : segments) out.segments.push_back(std::move(seg));
  std::sort(out.segments.begin(), out.segments.end(),
            [](const CriticalSegment& a, const CriticalSegment& b) {
              if (a.virt_s != b.virt_s) return a.virt_s > b.virt_s;
              return a.name < b.name;
            });
  return out;
}

}  // namespace insitu::obs::analyze
