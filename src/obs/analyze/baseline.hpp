#pragma once

// Perf-regression baselines (`bench/baselines/*.json`, schema
// "insitu-bench-baseline/1"): per-run virtual-time phase breakdowns plus
// the run metadata needed to tell apples from oranges (tool, config,
// ranks, threads, seed). Benches write them via `--baseline <path>`;
// `tools/perf_report --check <path>` re-derives the same numbers from a
// fresh trace and flags per-phase regressions beyond tolerance.
//
// Baselines compare *virtual* seconds only, so checks are deterministic:
// a regression means the modeled cost changed, never that CI was slow.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/analyze/analyze.hpp"
#include "obs/analyze/json.hpp"
#include "obs/export_meta.hpp"
#include "pal/status.hpp"

namespace insitu::obs::analyze {

inline constexpr const char* kBaselineSchema = "insitu-bench-baseline/1";

/// One benchmark configuration's recorded numbers.
struct BaselineRun {
  std::string label;       ///< the trace run label, e.g. "Histogram/sync/p4"
  int nranks = 0;
  std::uint64_t steps = 0;
  std::uint64_t seed = 0;
  /// Mean per-rank-per-step virtual seconds by phase (self time); the sum
  /// equals the bench-reported step time (sim + analysis per step).
  std::array<double, kCategoryCount> phase_s{};
  double total_s = 0.0;       ///< sum of phase_s
  double end_to_end_s = 0.0;  ///< last span end across all tracks

  /// Buffer-pool summary for the run (pal::BufferPool deltas captured by
  /// the bench session). Optional: baselines written before the pool
  /// existed parse with has_pool=false and are never pool-checked.
  bool has_pool = false;
  double pool_hit_rate = 0.0;         ///< hits / (hits + misses), 0..1
  double pool_bytes_allocated = 0.0;  ///< fresh bytes allocated (misses)
  double pool_bytes_reused = 0.0;     ///< request bytes served by the free list

  /// Kernel-dispatch summary (insitu::kernels counter deltas captured by
  /// the bench session). Optional like the pool block; informational only
  /// in check_baseline — element-count or variant drift produces notes,
  /// never regressions (virtual time already gates the result).
  bool has_kernels = false;
  std::string kernels_variant;  ///< active dispatch variant for the run
  std::vector<std::pair<std::string, double>> kernels_elements;
};

struct Baseline {
  std::string tool;    ///< bench binary name
  std::string config;  ///< full command line the numbers came from
  int threads = 1;
  std::uint64_t seed = 0;
  std::vector<BaselineRun> runs;
};

/// Distill one analyzed run into a baseline entry.
BaselineRun baseline_run_from_analysis(const std::string& label,
                                       const TraceAnalysis& analysis,
                                       std::uint64_t seed);

std::string write_baseline(const Baseline& baseline);
Status write_baseline_file(const std::string& path, const Baseline& baseline);

StatusOr<Baseline> read_baseline(std::string_view text);
StatusOr<Baseline> read_baseline_file(const std::string& path);

/// True when the (already parsed) JSON document is a baseline file, used
/// by perf_report to auto-detect its input kind.
bool is_baseline_json(const Json& root);

struct CheckOptions {
  /// Allowed relative growth per phase before flagging (0.10 = +10%).
  double tolerance = 0.10;
  /// Phases smaller than this in the baseline are never flagged (noise
  /// floor for near-zero phases).
  double min_phase_s = 1e-9;
};

struct Regression {
  std::string run;    ///< baseline run label
  std::string phase;  ///< category name, "total", or "end_to_end"
  double baseline_s = 0.0;
  double current_s = 0.0;

  double ratio() const {
    return baseline_s <= 0.0 ? 0.0 : current_s / baseline_s;
  }
};

struct CheckResult {
  std::vector<Regression> regressions;
  /// Structural mismatches (runs missing on either side, step-count or
  /// rank-count drift); these fail the check like regressions do.
  std::vector<std::string> mismatches;
  /// Informational lines (improvements, skipped near-zero phases).
  std::vector<std::string> notes;

  bool ok() const { return regressions.empty() && mismatches.empty(); }
};

/// Compare `current` against `base`, run-by-run (matched on label).
CheckResult check_baseline(const Baseline& base, const Baseline& current,
                           const CheckOptions& options = {});

}  // namespace insitu::obs::analyze
