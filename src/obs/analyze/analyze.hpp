#pragma once

// Trace analysis: turns raw span logs (RunReport::trace, or an imported
// Chrome-trace export) into the paper-style performance breakdowns —
// per-span aggregation with self vs. total virtual time and parent
// attribution, per-phase (category) cost splits, and critical-path /
// overlap extraction across the `rank N` and `rank N worker` tracks.
//
// Everything here runs on the *virtual* timeline, so results are
// deterministic: byte-identical across hosts and kernel-thread budgets
// (`threads=N` changes wall time only). Wall statistics are carried along
// for profiling this implementation but never drive any derived value.
//
// Structure recovery relies on TraceEvent::depth: per track, events arrive
// in destruction (post-) order, so an event at depth d adopts every
// not-yet-claimed event at depth d+1 as a direct child. This is exact —
// no interval-containment heuristics, no tie-breaking on timestamps.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace insitu::obs::analyze {

/// Virtual seconds a span spent in each direct parent ("-" = top level).
struct ParentStat {
  std::string parent;
  std::uint64_t count = 0;
  double virt_s = 0.0;
};

/// Aggregated statistics for one span name.
struct SpanStat {
  std::string name;
  Category category = Category::kOther;
  std::uint64_t count = 0;
  double total_virt_s = 0.0;  ///< sum of span durations
  double self_virt_s = 0.0;   ///< total minus direct children's durations
  std::int64_t total_wall_ns = 0;
  std::vector<ParentStat> parents;  ///< sorted by parent name

  double mean_virt_s() const {
    return count == 0 ? 0.0 : total_virt_s / static_cast<double>(count);
  }
};

/// Per-track phase totals: self virtual time by category, coverage, span.
struct TrackStat {
  int track = 0;  ///< tid: rank, or rank + kWorkerTrackOffset for workers
  std::array<double, kCategoryCount> self_virt_s{};
  double traced_virt_s = 0.0;  ///< sum of top-level span durations
  double begin_s = 0.0;        ///< first span begin (virtual)
  double end_s = 0.0;          ///< last span end (virtual)

  bool is_worker() const { return track >= kWorkerTrackOffset; }
  int rank() const {
    return is_worker() ? track - kWorkerTrackOffset : track;
  }
};

/// Mean per-rank phase split of the per-step work: `miniapp.step` trees
/// feed the sim phase, `bridge.execute` trees split by category, and
/// `io.read_step*` trees feed the io phase of post hoc pipelines. total()
/// equals the bench-reported step time (per-step sim + per-step analysis).
struct StepBreakdown {
  std::array<double, kCategoryCount> per_step_s{};
  /// Steps per track (max): miniapp.step count, or bridge.execute count
  /// for post hoc pipelines that have no simulation loop.
  std::uint64_t steps = 0;

  double total() const;
};

/// Everything derived from one run's TraceLog in a single pass.
struct TraceAnalysis {
  std::vector<SpanStat> spans;    ///< sorted by name
  std::vector<TrackStat> tracks;  ///< sorted by track id
  StepBreakdown step;
  int nranks = 0;

  /// Mean self virtual seconds per rank (sim-plane tracks only).
  std::array<double, kCategoryCount> mean_rank_phase_s() const;
  /// Mean self virtual seconds per worker track ({} when no workers).
  std::array<double, kCategoryCount> mean_worker_phase_s() const;
  /// Mean traced (top-level-covered) virtual seconds per rank track.
  double mean_rank_traced_s() const;
  /// Run end-to-end: last span end across every track.
  double end_to_end_s() const;
  bool has_worker_tracks() const;
};

TraceAnalysis analyze_trace(const TraceLog& log);

/// Per-span aggregation restricted to one track (rank or worker tid).
std::vector<SpanStat> aggregate_track_spans(const TraceLog& log, int track);

/// Sim-plane vs worker-plane overlap for one rank (async runs).
struct RankOverlap {
  int rank = 0;
  double sim_busy_s = 0.0;     ///< top-level span time on the rank track
  double worker_busy_s = 0.0;  ///< top-level span time on the worker track
  double overlap_s = 0.0;      ///< time both tracks were busy
  double end_s = 0.0;          ///< later of the two tracks' last span ends

  /// Fraction of worker work hidden behind the simulation.
  double overlap_fraction() const {
    return worker_busy_s <= 0.0 ? 0.0 : overlap_s / worker_busy_s;
  }
};

/// One overlap row per rank that has a worker track (empty for sync runs).
std::vector<RankOverlap> rank_overlaps(const TraceLog& log);

/// One aggregated segment of the critical path walk.
struct CriticalSegment {
  std::string name;  ///< top-level span name, or "(idle)" for gaps
  bool worker = false;
  std::uint64_t count = 0;
  double virt_s = 0.0;
};

/// Critical-path approximation for the run: on the rank whose tracks
/// finish last, attribute every instant of [0, end] to the worker-track
/// top-level span covering it, else the rank-track span, else "(idle)".
/// Segment durations sum to end_s exactly, so async-overlap wins show up
/// as sim-plane spans vanishing from the path rather than as idle time.
struct CriticalPath {
  int rank = 0;
  double end_s = 0.0;
  std::vector<CriticalSegment> segments;  ///< sorted by virt_s desc, name
};

CriticalPath critical_path(const TraceLog& log);

}  // namespace insitu::obs::analyze
