#pragma once

// Internal: the transcendental cores (exp, sin, cos) shared by every
// dispatch variant. The algorithms are written once, templated over an
// "Ops" policy that is either scalar doubles or compiler-vector lanes,
// so each element sees the identical operation sequence in every
// variant — that is what makes vexp/vsin/vcos bit-identical across
// generic / batched / simd (the library is built with
// -ffp-contract=off so no variant fuses a multiply-add the others
// don't).
//
// Accuracy (vs glibc, measured by tests/kernels_test.cpp and
// bench/ablation_kernels):
//   * exp_core: argument clamped to [-708, 708] (results stay normal);
//     round-to-nearest k = x*log2e via the 1.5*2^52 shifter, two-part
//     Cody-Waite ln2 reduction, degree-13 Horner on |r| <= ln2/2,
//     exact 2^k scaling through the exponent bits.
//   * sincos_core: j = x*2/pi via the same shifter, three-part pi/2
//     reduction (fdlibm's split), fdlibm kernel polynomials, quadrant
//     combine by lane select. Intended domain |x| <= 2^20.

#include <cstdint>
#include <cstring>

namespace insitu::kernels::detail {

struct ScalarOps {
  using D = double;
  using I = std::int64_t;
  static D bcast(double v) { return v; }
  static I ibcast(std::int64_t v) { return v; }
  static I bits(D x) {
    I r;
    std::memcpy(&r, &x, sizeof r);
    return r;
  }
  static D from_bits(I x) {
    D r;
    std::memcpy(&r, &x, sizeof r);
    return r;
  }
  static I cmp_gt(D a, D b) { return a > b ? -1 : 0; }
  static I cmp_lt(D a, D b) { return a < b ? -1 : 0; }
  static I cmp_ieq(I a, I b) { return a == b ? -1 : 0; }
  static D sel(I mask, D t, D f) { return mask != 0 ? t : f; }
};

// Shifter: adding 1.5 * 2^52 forces round-to-nearest of the integer
// part into the low mantissa bits (valid while |value| < 2^51).
inline constexpr double kShifter = 6755399441055744.0;

inline constexpr double kLog2E = 1.4426950408889634074;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;

template <class O>
typename O::D exp_core(typename O::D x) {
  using D = typename O::D;
  using I = typename O::I;
  const D hi = O::bcast(708.0);
  const D lo = O::bcast(-708.0);
  x = O::sel(O::cmp_gt(x, hi), hi, x);  // NaN keeps x: compares are false
  x = O::sel(O::cmp_lt(x, lo), lo, x);

  const D shifter = O::bcast(kShifter);
  D kd = x * O::bcast(kLog2E) + shifter;
  const I ki = O::bits(kd) - O::bits(shifter);
  kd = kd - shifter;

  D r = x - kd * O::bcast(kLn2Hi);
  r = r - kd * O::bcast(kLn2Lo);

  // Horner over 1/k!: e^r = (((c13 r + c12) r + ...) r + 1) r + 1.
  D p = O::bcast(1.6059043836821614599e-10);   // 1/13!
  p = p * r + O::bcast(2.0876756987868098979e-09);  // 1/12!
  p = p * r + O::bcast(2.5052108385441718775e-08);  // 1/11!
  p = p * r + O::bcast(2.7557319223985890653e-07);  // 1/10!
  p = p * r + O::bcast(2.7557319223985892510e-06);  // 1/9!
  p = p * r + O::bcast(2.4801587301587301566e-05);  // 1/8!
  p = p * r + O::bcast(1.9841269841269841253e-04);  // 1/7!
  p = p * r + O::bcast(1.3888888888888889419e-03);  // 1/6!
  p = p * r + O::bcast(8.3333333333333332177e-03);  // 1/5!
  p = p * r + O::bcast(4.1666666666666664354e-02);  // 1/4!
  p = p * r + O::bcast(1.6666666666666665741e-01);  // 1/3!
  p = p * r + O::bcast(0.5);
  p = p * r + O::bcast(1.0);
  p = p * r + O::bcast(1.0);

  const I scale_bits = (ki + O::ibcast(1023)) << 52;
  return p * O::from_bits(scale_bits);
}

inline constexpr double kTwoOverPi = 6.36619772367581382433e-01;
inline constexpr double kPio2_1 = 1.57079632673412561417e+00;
inline constexpr double kPio2_2 = 6.07710050630396597660e-11;
inline constexpr double kPio2_3 = 2.02226624879595063154e-21;

/// Shared reduction + kernel polynomials; the callers combine (s, c)
/// by quadrant.
template <class O>
void sincos_core(typename O::D x, typename O::D& s_out,
                 typename O::D& c_out, typename O::I& q_out) {
  using D = typename O::D;
  using I = typename O::I;
  const D shifter = O::bcast(kShifter);
  D jd = x * O::bcast(kTwoOverPi) + shifter;
  const I ji = O::bits(jd) - O::bits(shifter);
  jd = jd - shifter;

  D r = x - jd * O::bcast(kPio2_1);
  r = r - jd * O::bcast(kPio2_2);
  r = r - jd * O::bcast(kPio2_3);

  const D z = r * r;
  const D w = z * r;

  // fdlibm __kernel_sin.
  D ps = O::bcast(1.58969099521155010221e-10);   // S6
  ps = ps * z + O::bcast(-2.50507602534068634195e-08);  // S5
  ps = ps * z + O::bcast(2.75573137070700676789e-06);   // S4
  ps = ps * z + O::bcast(-1.98412698298579493134e-04);  // S3
  ps = ps * z + O::bcast(8.33333333332248946124e-03);   // S2
  s_out = r + w * (O::bcast(-1.66666666666666324348e-01) + z * ps);

  // fdlibm __kernel_cos (plain Horner form).
  D pc = O::bcast(-1.13596475577881948265e-11);  // C6
  pc = pc * z + O::bcast(2.08757232129817482790e-09);   // C5
  pc = pc * z + O::bcast(-2.75573143513906633035e-07);  // C4
  pc = pc * z + O::bcast(2.48015872894767294178e-05);   // C3
  pc = pc * z + O::bcast(-1.38888888888741095749e-03);  // C2
  pc = pc * z + O::bcast(4.16666666666666019037e-02);   // C1
  c_out = O::bcast(1.0) - z * O::bcast(0.5) + z * z * pc;

  q_out = ji & O::ibcast(3);
}

template <class O>
typename O::D sin_core(typename O::D x) {
  typename O::D s, c;
  typename O::I q;
  sincos_core<O>(x, s, c, q);
  // q0: s, q1: c, q2: -s, q3: -c.
  const typename O::D base =
      O::sel(O::cmp_ieq(q & O::ibcast(1), O::ibcast(1)), c, s);
  const typename O::D sign = O::sel(
      O::cmp_ieq(q & O::ibcast(2), O::ibcast(2)), O::bcast(-1.0),
      O::bcast(1.0));
  return base * sign;
}

template <class O>
typename O::D cos_core(typename O::D x) {
  typename O::D s, c;
  typename O::I q;
  sincos_core<O>(x, s, c, q);
  // q0: c, q1: -s, q2: -c, q3: s.
  const typename O::D base =
      O::sel(O::cmp_ieq(q & O::ibcast(1), O::ibcast(1)), s, c);
  const typename O::D sign = O::sel(
      O::cmp_ieq((q + O::ibcast(1)) & O::ibcast(2), O::ibcast(2)),
      O::bcast(-1.0), O::bcast(1.0));
  return base * sign;
}

}  // namespace insitu::kernels::detail
