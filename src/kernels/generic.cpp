// The scalar reference variant. Compiled with auto-vectorization
// disabled (see CMakeLists.txt) so "INSITU_KERNELS=generic" really is
// the element-at-a-time semantics contract the other variants are
// golden-tested against.

#include <cmath>
#include <limits>

#include "kernels/detail.hpp"
#include "kernels/table.hpp"
#include "kernels/vmath.hpp"

namespace insitu::kernels::detail {

namespace {

Moments g_reduce_moments(const double* x, std::int64_t n,
                         const std::uint8_t* skip) {
  Moments m{std::numeric_limits<double>::max(),
            std::numeric_limits<double>::lowest(), 0.0, 0.0, 0};
  for (std::int64_t i = 0; i < n; ++i) {
    if (skip != nullptr && skip[i] != 0) continue;
    const double v = x[i];
    m.min = v < m.min ? v : m.min;
    m.max = m.max < v ? v : m.max;
    m.sum += v;
    m.sum_sq += v * v;
    ++m.count;
  }
  return m;
}

void g_histogram_bin(const double* x, std::int64_t n,
                     const std::uint8_t* skip, double min_value,
                     double width, int num_bins, std::int64_t* bins) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (skip != nullptr && skip[i] != 0) continue;
    ++bins[bin_index(x[i], min_value, width, num_bins)];
  }
}

void g_accumulate_i64(std::int64_t* dst, const std::int64_t* src,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

double g_dot(const double* a, const double* b, std::int64_t n) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void g_fma_accumulate(double* dst, const double* a, const double* b,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

void g_saxpy(double* dst, double a, const double* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += a * x[i];
}

void g_lerp(double* dst, const double* a, const double* b, double t,
            std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = a[i] + (b[i] - a[i]) * t;
}

void g_colormap_apply(const double* s, std::int64_t n, double lo, double hi,
                      const std::uint8_t* controls, int ncontrols,
                      std::uint8_t* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    colormap_one(s[i], lo, hi, controls, ncontrols, out + 4 * i);
  }
}

void g_depth_composite(std::uint8_t* dst_color, float* dst_depth,
                       const std::uint8_t* src_color, const float* src_depth,
                       std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (src_depth[i] < dst_depth[i]) {
      store_u32(dst_color + 4 * i, load_u32(src_color + 4 * i));
      dst_depth[i] = src_depth[i];
    }
  }
}

void g_raster_span(const RasterTri& tri, double py, int x0, std::int64_t n,
                   const float* dst_depth, float* depth, double* scalar,
                   std::uint8_t* inside) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double px = static_cast<double>(x0 + i) + 0.5;
    inside[i] = raster_one(tri, px, py, dst_depth[i], depth + i, scalar + i);
  }
}

std::int64_t g_masked_store_span(std::uint8_t* dst_color, float* dst_depth,
                                 const std::uint8_t* colors,
                                 const float* depth,
                                 const std::uint8_t* inside,
                                 std::int64_t n) {
  std::int64_t stored = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (inside[i] != 0) {
      store_u32(dst_color + 4 * i, load_u32(colors + 4 * i));
      dst_depth[i] = depth[i];
      ++stored;
    }
  }
  return stored;
}

void g_plane_distance(const double* x, const double* y, const double* z,
                      std::int64_t n, double ox, double oy, double oz,
                      double nx, double ny, double nz, double* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = (x[i] - ox) * nx + (y[i] - oy) * ny + (z[i] - oz) * nz;
  }
}

void g_magnitude3(const double* u, std::int64_t su, const double* v,
                  std::int64_t sv, const double* w, std::int64_t sw,
                  std::int64_t n, double* dst) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = u[i * su];
    const double b = v[i * sv];
    const double c = w[i * sw];
    dst[i] = std::sqrt(a * a + b * b + c * c);
  }
}

void g_oscillator_accumulate(double* dst, std::int64_t n, double ox,
                             double sx, std::int64_t i0, double dyy,
                             double dzz, double cx, double denom,
                             double tf) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double px = ox + sx * static_cast<double>(i0 + i);
    const double dx = px - cx;
    const double r2 = dx * dx + dyy + dzz;
    dst[i] += std::exp(-r2 / denom) * tf;
  }
}

void g_vexp(const double* x, double* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = exp_core<ScalarOps>(x[i]);
}

void g_vsin(const double* x, double* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = sin_core<ScalarOps>(x[i]);
}

void g_vcos(const double* x, double* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = cos_core<ScalarOps>(x[i]);
}

void g_quantize_encode(const double* x, std::int64_t n, double lo,
                       double inv_step, std::uint16_t* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = quantize_one(x[i], lo, inv_step);
  }
}

void g_quantize_decode(const std::uint16_t* q, std::int64_t n, double lo,
                       double step, double* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = lo + static_cast<double>(q[i]) * step;
  }
}

void g_delta_encode(const double* x, const double* prev, std::int64_t n,
                    std::uint64_t* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = double_bits(x[i]) ^ double_bits(prev[i]);
  }
}

void g_delta_decode(const std::uint64_t* delta, const double* prev,
                    std::int64_t n, double* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = double_from_bits(delta[i] ^ double_bits(prev[i]));
  }
}

std::int64_t g_subsample_gather(const double* x, std::int64_t n_tuples,
                                int components, int stride, double* out) {
  std::int64_t kept = 0;
  for (std::int64_t t = 0; t < n_tuples; t += stride, ++kept) {
    for (int c = 0; c < components; ++c) {
      out[kept * components + c] = x[t * components + c];
    }
  }
  return kept;
}

void g_subsample_expand(const double* kept, std::int64_t n_tuples,
                        int components, int stride, double* out) {
  for (std::int64_t t = 0; t < n_tuples; ++t) {
    const std::int64_t k = t / stride;
    for (int c = 0; c < components; ++c) {
      out[t * components + c] = kept[k * components + c];
    }
  }
}

}  // namespace

const KernelTable kGenericTable = {
    g_reduce_moments, g_histogram_bin, g_accumulate_i64,
    g_dot,            g_fma_accumulate, g_saxpy,
    g_lerp,           g_colormap_apply, g_depth_composite,
    g_raster_span,    g_masked_store_span, g_plane_distance,
    g_magnitude3,     g_oscillator_accumulate, g_vexp,
    g_vsin,           g_vcos,           g_quantize_encode,
    g_quantize_decode, g_delta_encode,  g_delta_decode,
    g_subsample_gather, g_subsample_expand,
};

}  // namespace insitu::kernels::detail
