#pragma once

// kernels:: — SIMD-friendly compute primitives behind runtime dispatch.
//
// Every inner loop that dominates a per-step in situ cost (histogram
// binning, moment reduction, lag products, pseudocolor lookup, depth
// compositing, scanline interpolation, oscillator field evaluation) is
// expressed once here as a primitive with three interchangeable
// implementations:
//
//   * generic — the scalar reference, compiled with auto-vectorization
//     disabled. This is the semantics contract every other variant is
//     tested against (tests/kernels_test.cpp).
//   * batched — the same element expressions restructured into long
//     branch-free strips that GCC/Clang auto-vectorize at -O2.
//   * simd    — explicit 4x double / 8x float lanes via the compiler's
//     portable vector extensions (no intrinsics headers), plus scalar
//     tails.
//
// The active variant is process-global: the INSITU_KERNELS environment
// variable ("generic" | "batched" | "simd") sets the default, the CLIs'
// `kernels=` option calls set_variant(), and nothing else may change it
// mid-run. Dispatch is one relaxed atomic load + indirect call per
// *chunk* (callers pass exec::parallel_for-sized ranges), so its cost is
// noise.
//
// Determinism contract (docs/PERFORMANCE.md "Kernel dispatch"):
//   * Kernels never touch the virtual clock; call sites charge the same
//     modeled cost regardless of variant, so virtual times are
//     byte-identical across variants.
//   * Per-element-independent kernels (binning index math, colormap,
//     interpolation, depth test, plane distance, oscillator field) use
//     the same per-element operation order in every variant and the
//     library is built with -ffp-contract=off, so their results are
//     bit-identical across variants.
//   * Reductions (sum / sum-of-squares, dot) reassociate across lanes;
//     only min/max/count are exact. Callers that need cross-variant
//     bit-identity must not depend on the sum bits (they may depend on
//     values derived from exact-integer sums).
//   * vexp/vsin/vcos are this library's own polynomial approximations —
//     bit-identical across variants, within the documented ULP bounds of
//     libm (kVexpMaxUlp etc.) over the documented domains.
//
// Layering: kernels depends on nothing but the C++ standard library; it
// sits below pal so every layer (miniapp, analysis, render, comm) can
// call it. Because it cannot see obs, it keeps process-global relaxed
// atomic counters per (kernel, variant); comm::Runtime::run snapshots
// them around each run and publishes the delta as kernels.* metrics.

#include <cstdint>
#include <string_view>

namespace insitu::kernels {

// ---- dispatch ----

enum class Variant : int {
  kGeneric = 0,  ///< scalar reference (no auto-vectorization)
  kBatched = 1,  ///< auto-vectorizable strip-mined loops
  kSimd = 2,     ///< explicit compiler-vector lanes
};

inline constexpr int kNumVariants = 3;

/// The variant all primitives dispatch to. First use reads
/// INSITU_KERNELS from the environment; unset/unknown values select
/// kSimd (the fastest variant is the default, the reference is opt-in).
Variant active_variant();

void set_variant(Variant v);

/// Parse "generic" / "scalar" / "batched" / "simd" and install it.
/// Returns false (and changes nothing) for unknown names.
bool set_variant(std::string_view name);

std::string_view variant_name(Variant v);

// ---- per-(kernel, variant) counters ----

enum class KernelId : int {
  kReduceMoments = 0,
  kHistogramBin,
  kAccumulateI64,
  kDot,
  kFmaAccumulate,
  kSaxpy,
  kLerp,
  kColormap,
  kDepthComposite,
  kRasterSpan,
  kMaskedStore,
  kPlaneDistance,
  kMagnitude3,
  kOscillator,
  kVexp,
  kVsin,
  kVcos,
  kQuantizeEncode,
  kQuantizeDecode,
  kDeltaEncode,
  kDeltaDecode,
  kSubsampleGather,
  kSubsampleExpand,
  kCount,
};

inline constexpr int kNumKernels = static_cast<int>(KernelId::kCount);

const char* kernel_name(KernelId id);

struct KernelStats {
  std::uint64_t calls = 0;
  std::uint64_t elements = 0;  ///< elements processed
  std::uint64_t bytes = 0;     ///< bytes read + written (modeled)
};

/// Snapshot of the process-global counters, indexed
/// [kernel][variant]. Publish deltas between two snapshots, never the
/// absolute values (the process accumulates across runs).
struct StatsSnapshot {
  KernelStats s[kNumKernels][kNumVariants];
};

StatsSnapshot stats_snapshot();

// ---- primitives ----

/// Fused min/max/sum/sum-of-squares reduction.
struct Moments {
  double min;    ///< +max() when count == 0
  double max;    ///< lowest() when count == 0
  double sum;
  double sum_sq;
  std::int64_t count;
};

/// Reduce over x[0..n). `skip` (nullable) marks elements to ignore
/// (skip[i] != 0). Min/max use the select `v < mn ? v : mn` — NaN
/// elements never replace the accumulator — and are exact across
/// variants; sum/sum_sq reassociate.
Moments reduce_moments(const double* x, std::int64_t n,
                       const std::uint8_t* skip);

/// Histogram binning: for each unskipped element,
///   scaled = (x[i] - min_value) / width * num_bins
///   bin    = scaled in [0, num_bins) ? trunc(scaled)
///            : scaled >= num_bins    ? num_bins - 1 : 0   (NaN -> 0)
///   ++bins[bin]
/// Matches the historical cast-then-clamp for every input where that
/// cast was defined, and is defined (bin 0) for NaN. Bit-identical
/// across variants. `bins` is accumulated into, not cleared.
void histogram_bin(const double* x, std::int64_t n, const std::uint8_t* skip,
                   double min_value, double width, int num_bins,
                   std::int64_t* bins);

/// dst[i] += src[i]. Exact (integer); the merge step of thread-private
/// histogram bins (callers tree-merge with this).
void accumulate_i64(std::int64_t* dst, const std::int64_t* src,
                    std::int64_t n);

/// Sum of a[i] * b[i]; reassociates across variants.
double dot(const double* a, const double* b, std::int64_t n);

/// dst[i] += a[i] * b[i] (lag/correlation products). Per-element
/// independent: bit-identical across variants.
void fma_accumulate(double* dst, const double* a, const double* b,
                    std::int64_t n);

/// dst[i] += a * x[i]. Bit-identical across variants.
void saxpy(double* dst, double a, const double* x, std::int64_t n);

/// dst[i] = a[i] + (b[i] - a[i]) * t — linear edge interpolation / blend.
/// Bit-identical across variants.
void lerp(double* dst, const double* a, const double* b, double t,
          std::int64_t n);

/// One-element lerp with the exact kernel expression; for call sites
/// (contour edge cuts) that interpolate single values.
inline double lerp1(double a, double b, double t) { return a + (b - a) * t; }

/// Piecewise-linear colormap lookup over `ncontrols >= 2` RGBA8 control
/// colors (4 bytes each), domain [lo, hi]:
///   t = hi > lo ? (s - lo) / (hi - lo) : 0.5, clamped to [0, 1]
///   (NaN s maps like t = 0; the historical code was undefined there)
///   scaled = t * (ncontrols - 1); idx = min(trunc(scaled), ncontrols-2)
///   channel = lround(a + (scaled - idx) * (b - a))
/// `out` receives 4 * n bytes. Bit-identical across variants.
void colormap_apply(const double* s, std::int64_t n, double lo, double hi,
                    const std::uint8_t* controls, int ncontrols,
                    std::uint8_t* out);

/// Z-buffer composite: where src_d[i] < dst_d[i], copy the RGBA8 pixel
/// and the depth. Colors are raw 4-byte pixels. NaN src depth never
/// wins. Bit-identical across variants.
void depth_composite(std::uint8_t* dst_color, float* dst_depth,
                     const std::uint8_t* src_color, const float* src_depth,
                     std::int64_t n);

/// Triangle setup for raster_span: screen coords, per-vertex depth and
/// scalar, and the precomputed signed inverse area.
struct RasterTri {
  double ax, ay, adepth, ascalar;
  double bx, by, bdepth, bscalar;
  double cx, cy, cdepth, cscalar;
  double inv_area;
};

/// Evaluate one scanline span: for i in [0, n), the pixel center is
/// (x0 + i + 0.5, py). Writes the interpolated float depth, the
/// interpolated scalar, and inside[i] = 1 when the pixel passes both the
/// barycentric test (w0, w1, w2 all >= 0; NaN accepts, matching the
/// reference rasterizer) and the depth test
/// !(depth >= dst_depth[i] || depth <= 0). Bit-identical across
/// variants.
void raster_span(const RasterTri& tri, double py, int x0, std::int64_t n,
                 const float* dst_depth, float* depth, double* scalar,
                 std::uint8_t* inside);

/// Store span results where inside[i] != 0: dst color (4 bytes/pixel)
/// and depth. Returns the number of pixels stored.
std::int64_t masked_store_span(std::uint8_t* dst_color, float* dst_depth,
                               const std::uint8_t* colors, const float* depth,
                               const std::uint8_t* inside, std::int64_t n);

/// out[i] = ((x[i]-ox)*nx + (y[i]-oy)*ny) + (z[i]-oz)*nz — signed
/// distance to the plane through (ox,oy,oz) with normal (nx,ny,nz),
/// matching Vec3::dot's association. Bit-identical across variants.
void plane_distance(const double* x, const double* y, const double* z,
                    std::int64_t n, double ox, double oy, double oz,
                    double nx, double ny, double nz, double* out);

/// dst[i] = sqrt((u*u + v*v) + w*w) over strided component streams
/// (u[i * su] etc.; stride 1 = contiguous). Bit-identical across
/// variants (sqrt is correctly rounded).
void magnitude3(const double* u, std::int64_t su, const double* v,
                std::int64_t sv, const double* w, std::int64_t sw,
                std::int64_t n, double* dst);

/// Oscillator row accumulation: for i in [0, n),
///   x  = ox + sx * (double)(i0 + i)          (grid point coordinate)
///   r2 = ((x-cx)^2 + dyy) + dzz              (dyy/dzz: precomputed
///                                             (y-cy)^2, (z-cz)^2)
///   dst[i] += exp(-r2 / denom) * tf
/// `denom` is the caller's (2 * radius) * radius; `tf` the hoisted
/// time factor. All variants call scalar std::exp so the field is
/// bit-identical across variants; only the coordinate/argument math is
/// vectorized.
void oscillator_accumulate(double* dst, std::int64_t n, double ox, double sx,
                           std::int64_t i0, double dyy, double dzz, double cx,
                           double denom, double tf);

// ---- vectorized transcendentals ----
//
// The library's own polynomial approximations: bit-identical across
// variants (same operation order everywhere, -ffp-contract=off), with
// accuracy measured against libm. Bounds checked by tests/kernels_test
// and bench/ablation_kernels on every run.

/// Max ULP error of vexp vs std::exp over [-708, 708] (inputs outside
/// are clamped; NaN propagates).
inline constexpr double kVexpMaxUlp = 4.0;
/// Max ULP error of vsin/vcos vs std::sin/std::cos over |x| <= 2^20.
inline constexpr double kVsinMaxUlp = 4.0;
inline constexpr double kVcosMaxUlp = 4.0;

void vexp(const double* x, double* out, std::int64_t n);
void vsin(const double* x, double* out, std::int64_t n);
void vcos(const double* x, double* out, std::int64_t n);

// ---- data-reduction primitives (io::ReductionPipeline) ----
//
// The in transit reduction stage (docs/PERFORMANCE.md "In transit data
// reduction") is built from these. All of them are per-element
// independent and bit-identical across variants: the quantizer is pure
// compare/convert arithmetic, delta is integer XOR, subsample is copies.

/// Fixed-rate 16-bit quantizer, encode direction. For each element:
///   t    = (x[i] - lo) * inv_step + 0.5
///   code = t in [0, 65536) ? trunc(t) : t >= 65536 ? 65535 : 0
/// i.e. round-to-nearest with saturation; negative-out-of-range and NaN
/// map to code 0. With inv_step = 1/step and step = (max-min)/65535 the
/// reconstruction error is bounded by step/2 for all finite in-range
/// inputs (io::reduction.hpp documents the block framing that picks
/// lo/step). Bit-identical across variants.
void quantize_encode(const double* x, std::int64_t n, double lo,
                     double inv_step, std::uint16_t* out);

/// Quantizer decode: out[i] = lo + q[i] * step. Bit-identical across
/// variants.
void quantize_decode(const std::uint16_t* q, std::int64_t n, double lo,
                     double step, double* out);

/// Delta-vs-previous-step encode: out[i] = bits(x[i]) XOR bits(prev[i])
/// (raw IEEE-754 bit patterns). Lossless: delta_decode reconstructs x
/// bit-exactly for every input including NaN payloads, denormals and
/// signed zeros. Bit-identical across variants.
void delta_encode(const double* x, const double* prev, std::int64_t n,
                  std::uint64_t* out);

/// Inverse of delta_encode: out[i] = from_bits(delta[i] XOR
/// bits(prev[i])). Bit-identical across variants.
void delta_decode(const std::uint64_t* delta, const double* prev,
                  std::int64_t n, double* out);

/// Stride-decimation gather over `n_tuples` tuples of `components`
/// doubles: keeps tuples 0, stride, 2*stride, … writing them
/// contiguously to `out`. Returns the kept-tuple count,
/// (n_tuples + stride - 1) / stride. Bit-identical across variants
/// (pure copies).
std::int64_t subsample_gather(const double* x, std::int64_t n_tuples,
                              int components, int stride, double* out);

/// Inverse expansion: out tuple t = kept tuple t / stride (nearest
/// previous kept tuple — piecewise-constant reconstruction). Bit-identical
/// across variants.
void subsample_expand(const double* kept, std::int64_t n_tuples,
                      int components, int stride, double* out);

}  // namespace insitu::kernels
