// The explicit-SIMD variant: 4x double / 8x float / 4x int64 lanes via
// the compiler's portable vector extensions (__attribute__((vector_size)));
// no intrinsics headers, so this builds for any target GCC/Clang can
// lower vectors on (baseline x86-64 lowers the 32-byte types to SSE2
// pairs). Scalar tails reuse the per-element helpers from detail.hpp,
// and element-dependent fallbacks (skip masks) call through the generic
// table, so results match the reference bit-for-bit wherever
// kernels.hpp promises it.

#include <cmath>
#include <cstring>
#include <limits>

#include "kernels/detail.hpp"
#include "kernels/table.hpp"
#include "kernels/vmath.hpp"

namespace insitu::kernels::detail {

namespace {

typedef double d4 __attribute__((vector_size(32)));
typedef std::int64_t i64x4 __attribute__((vector_size(32)));
typedef float f4 __attribute__((vector_size(16)));
typedef std::int32_t i32x4 __attribute__((vector_size(16)));
typedef float f8 __attribute__((vector_size(32)));
typedef std::int32_t i32x8 __attribute__((vector_size(32)));
typedef std::uint32_t u32x8 __attribute__((vector_size(32)));

template <class V>
V load(const void* p) {
  V v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

template <class V>
void store(void* p, V v) {
  std::memcpy(p, &v, sizeof v);
}

inline d4 bcast4(double v) { return d4{v, v, v, v}; }

inline i64x4 dbits(d4 x) { return load<i64x4>(&x); }
inline d4 dfrom(i64x4 x) { return load<d4>(&x); }

inline d4 sel(i64x4 m, d4 t, d4 f) {
  return dfrom((m & dbits(t)) | (~m & dbits(f)));
}

struct VecOps {
  using D = d4;
  using I = i64x4;
  static D bcast(double v) { return bcast4(v); }
  static I ibcast(std::int64_t v) { return i64x4{v, v, v, v}; }
  static I bits(D x) { return dbits(x); }
  static D from_bits(I x) { return dfrom(x); }
  static I cmp_gt(D a, D b) { return a > b; }
  static I cmp_lt(D a, D b) { return a < b; }
  static I cmp_ieq(I a, I b) { return a == b; }
  static D sel(I m, D t, D f) { return detail::sel(m, t, f); }
};

Moments s_reduce_moments(const double* x, std::int64_t n,
                         const std::uint8_t* skip) {
  if (skip != nullptr) return kGenericTable.reduce_moments(x, n, skip);
  Moments m{std::numeric_limits<double>::max(),
            std::numeric_limits<double>::lowest(), 0.0, 0.0, n};
  d4 vmin = bcast4(m.min), vmax = bcast4(m.max);
  d4 vsum = bcast4(0.0), vssq = bcast4(0.0);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const d4 v = load<d4>(x + i);
    vmin = sel(v < vmin, v, vmin);
    vmax = sel(vmax < v, v, vmax);
    vsum += v;
    vssq += v * v;
  }
  for (int l = 0; l < 4; ++l) {
    m.min = vmin[l] < m.min ? vmin[l] : m.min;
    m.max = m.max < vmax[l] ? vmax[l] : m.max;
    m.sum += vsum[l];
    m.sum_sq += vssq[l];
  }
  for (; i < n; ++i) {
    const double v = x[i];
    m.min = v < m.min ? v : m.min;
    m.max = m.max < v ? v : m.max;
    m.sum += v;
    m.sum_sq += v * v;
  }
  return m;
}

void s_histogram_bin(const double* x, std::int64_t n,
                     const std::uint8_t* skip, double min_value,
                     double width, int num_bins, std::int64_t* bins) {
  if (skip != nullptr) {
    kGenericTable.histogram_bin(x, n, skip, min_value, width, num_bins,
                                bins);
    return;
  }
  const d4 vmin = bcast4(min_value);
  const d4 vw = bcast4(width);
  const d4 vnb = bcast4(static_cast<double>(num_bins));
  const d4 vnbm1 = bcast4(static_cast<double>(num_bins - 1));
  const d4 vzero = bcast4(0.0);

  // Smooth fields put neighboring elements in the same bin, so direct
  // `++bins[idx]` serializes on the store-to-load dependency of one
  // counter. Four lane-private rows give four independent chains; the
  // deterministic row merge (integer adds) keeps results bit-identical.
  constexpr int kMaxPrivateBins = 512;
  std::int64_t rows[4 * kMaxPrivateBins];
  const bool use_rows =
      num_bins <= kMaxPrivateBins &&
      n >= 8 * static_cast<std::int64_t>(num_bins);
  std::int64_t* lane_bins[4] = {bins, bins, bins, bins};
  if (use_rows) {
    std::memset(rows, 0,
                4 * static_cast<std::size_t>(num_bins) * sizeof(rows[0]));
    for (int l = 0; l < 4; ++l) lane_bins[l] = rows + l * num_bins;
  }

  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const d4 v = load<d4>(x + i);
    const d4 t = (v - vmin) / vw * vnb;
    const d4 oob = sel(t >= vnb, vnbm1, vzero);
    const d4 safe = sel((t >= vzero) & (t < vnb), t, oob);  // NaN -> 0
    const i64x4 idx = __builtin_convertvector(safe, i64x4);
    ++lane_bins[0][idx[0]];
    ++lane_bins[1][idx[1]];
    ++lane_bins[2][idx[2]];
    ++lane_bins[3][idx[3]];
  }
  for (; i < n; ++i) {
    ++bins[bin_index(x[i], min_value, width, num_bins)];
  }
  if (use_rows) {
    for (int b = 0; b < num_bins; ++b) {
      bins[b] += ((rows[b] + rows[num_bins + b]) + rows[2 * num_bins + b]) +
                 rows[3 * num_bins + b];
    }
  }
}

void s_accumulate_i64(std::int64_t* dst, const std::int64_t* src,
                      std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<i64x4>(dst + i, load<i64x4>(dst + i) + load<i64x4>(src + i));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

double s_dot(const double* a, const double* b, std::int64_t n) {
  d4 vsum = bcast4(0.0);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vsum += load<d4>(a + i) * load<d4>(b + i);
  }
  double total = ((vsum[0] + vsum[1]) + vsum[2]) + vsum[3];
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

void s_fma_accumulate(double* dst, const double* a, const double* b,
                      std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<d4>(dst + i,
              load<d4>(dst + i) + load<d4>(a + i) * load<d4>(b + i));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void s_saxpy(double* dst, double a, const double* x, std::int64_t n) {
  const d4 va = bcast4(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<d4>(dst + i, load<d4>(dst + i) + va * load<d4>(x + i));
  }
  for (; i < n; ++i) dst[i] += a * x[i];
}

void s_lerp(double* dst, const double* a, const double* b, double t,
            std::int64_t n) {
  const d4 vt = bcast4(t);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const d4 va = load<d4>(a + i);
    store<d4>(dst + i, va + (load<d4>(b + i) - va) * vt);
  }
  for (; i < n; ++i) dst[i] = a[i] + (b[i] - a[i]) * t;
}

void s_colormap_apply(const double* s, std::int64_t n, double lo, double hi,
                      const std::uint8_t* controls, int ncontrols,
                      std::uint8_t* out) {
  constexpr std::int64_t kStrip = 256;
  const double span = static_cast<double>(ncontrols - 1);
  double scaled[kStrip];
  const d4 vlo = bcast4(lo);
  const d4 vrange = bcast4(hi - lo);
  const d4 vone = bcast4(1.0);
  const d4 vzero = bcast4(0.0);
  const d4 vspan = bcast4(span);
  for (std::int64_t base = 0; base < n; base += kStrip) {
    const std::int64_t len = n - base < kStrip ? n - base : kStrip;
    if (hi > lo) {
      std::int64_t i = 0;
      for (; i + 4 <= len; i += 4) {
        d4 t = (load<d4>(s + base + i) - vlo) / vrange;
        t = sel(t >= vzero, t, vzero);  // NaN -> 0
        t = sel(t > vone, vone, t);
        store<d4>(scaled + i, t * vspan);
      }
      for (; i < len; ++i) {
        double t = (s[base + i] - lo) / (hi - lo);
        if (!(t >= 0.0)) t = 0.0;
        if (t > 1.0) t = 1.0;
        scaled[i] = t * span;
      }
    } else {
      for (std::int64_t i = 0; i < len; ++i) scaled[i] = 0.5 * span;
    }
    for (std::int64_t i = 0; i < len; ++i) {
      int idx = static_cast<int>(scaled[i]);
      if (idx > ncontrols - 2) idx = ncontrols - 2;
      const double frac = scaled[i] - static_cast<double>(idx);
      const std::uint8_t* a = controls + 4 * idx;
      const std::uint8_t* b = a + 4;
      std::uint8_t* o = out + 4 * (base + i);
      for (int ch = 0; ch < 4; ++ch) {
        o[ch] = static_cast<std::uint8_t>(std::lround(
            a[ch] + frac * (static_cast<double>(b[ch]) - a[ch])));
      }
    }
  }
}

void s_depth_composite(std::uint8_t* dst_color, float* dst_depth,
                       const std::uint8_t* src_color, const float* src_depth,
                       std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const f8 sd = load<f8>(src_depth + i);
    const f8 dd = load<f8>(dst_depth + i);
    const i32x8 m = sd < dd;  // NaN src never wins
    const u32x8 um = load<u32x8>(&m);
    const u32x8 sc = load<u32x8>(src_color + 4 * i);
    const u32x8 dc = load<u32x8>(dst_color + 4 * i);
    store<u32x8>(dst_color + 4 * i, (sc & um) | (dc & ~um));
    const u32x8 sdb = load<u32x8>(&sd);
    const u32x8 ddb = load<u32x8>(&dd);
    const u32x8 out = (sdb & um) | (ddb & ~um);
    store<u32x8>(dst_depth + i, out);
  }
  for (; i < n; ++i) {
    if (src_depth[i] < dst_depth[i]) {
      store_u32(dst_color + 4 * i, load_u32(src_color + 4 * i));
      dst_depth[i] = src_depth[i];
    }
  }
}

void s_raster_span(const RasterTri& t, double py, int x0, std::int64_t n,
                   const float* dst_depth, float* depth, double* scalar,
                   std::uint8_t* inside) {
  const d4 vpy = bcast4(py);
  const d4 vinv = bcast4(t.inv_area);
  const d4 vzero = bcast4(0.0);
  const d4 vone = bcast4(1.0);
  const d4 vax = bcast4(t.ax), vay = bcast4(t.ay);
  const d4 vbx = bcast4(t.bx), vby = bcast4(t.by);
  const d4 vcx = bcast4(t.cx), vcy = bcast4(t.cy);
  const f4 fzero = f4{0.0f, 0.0f, 0.0f, 0.0f};
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double xb = static_cast<double>(x0 + i);
    const d4 px = d4{xb, xb + 1.0, xb + 2.0, xb + 3.0} + bcast4(0.5);
    const d4 w0 =
        ((vbx - px) * (vcy - vpy) - (vcx - px) * (vby - vpy)) * vinv;
    const d4 w1 =
        ((vcx - px) * (vay - vpy) - (vax - px) * (vcy - vpy)) * vinv;
    const d4 w2 = vone - w0 - w1;
    const i64x4 outside = (w0 < vzero) | (w1 < vzero) | (w2 < vzero);
    const d4 dd = w0 * bcast4(t.adepth) + w1 * bcast4(t.bdepth) +
                  w2 * bcast4(t.cdepth);
    const f4 df = __builtin_convertvector(dd, f4);
    store<f4>(depth + i, df);
    store<d4>(scalar + i, w0 * bcast4(t.ascalar) + w1 * bcast4(t.bscalar) +
                              w2 * bcast4(t.cscalar));
    const f4 dst = load<f4>(dst_depth + i);
    const i32x4 rejected = (df >= dst) | (df <= fzero);
    const i32x4 out32 = __builtin_convertvector(outside, i32x4) | rejected;
    for (int l = 0; l < 4; ++l) {
      inside[i + l] = static_cast<std::uint8_t>(out32[l] == 0);
    }
  }
  for (; i < n; ++i) {
    const double px = static_cast<double>(x0 + i) + 0.5;
    inside[i] = raster_one(t, px, py, dst_depth[i], depth + i, scalar + i);
  }
}

std::int64_t s_masked_store_span(std::uint8_t* dst_color, float* dst_depth,
                                 const std::uint8_t* colors,
                                 const float* depth,
                                 const std::uint8_t* inside,
                                 std::int64_t n) {
  std::int64_t stored = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint32_t m = inside[i] != 0 ? 0xffffffffu : 0u;
    const std::uint32_t sc = load_u32(colors + 4 * i);
    const std::uint32_t dc = load_u32(dst_color + 4 * i);
    store_u32(dst_color + 4 * i, (sc & m) | (dc & ~m));
    dst_depth[i] = inside[i] != 0 ? depth[i] : dst_depth[i];
    stored += inside[i] != 0;
  }
  return stored;
}

void s_plane_distance(const double* x, const double* y, const double* z,
                      std::int64_t n, double ox, double oy, double oz,
                      double nx, double ny, double nz, double* out) {
  const d4 vox = bcast4(ox), voy = bcast4(oy), voz = bcast4(oz);
  const d4 vnx = bcast4(nx), vny = bcast4(ny), vnz = bcast4(nz);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const d4 d = (load<d4>(x + i) - vox) * vnx +
                 (load<d4>(y + i) - voy) * vny +
                 (load<d4>(z + i) - voz) * vnz;
    store<d4>(out + i, d);
  }
  for (; i < n; ++i) {
    out[i] = (x[i] - ox) * nx + (y[i] - oy) * ny + (z[i] - oz) * nz;
  }
}

void s_magnitude3(const double* u, std::int64_t su, const double* v,
                  std::int64_t sv, const double* w, std::int64_t sw,
                  std::int64_t n, double* dst) {
  // sqrt is correctly rounded, so the compiler may vectorize this loop
  // freely; the strided gathers keep it simple either way.
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = u[i * su];
    const double b = v[i * sv];
    const double c = w[i * sw];
    dst[i] = std::sqrt(a * a + b * b + c * c);
  }
}

void s_oscillator_accumulate(double* dst, std::int64_t n, double ox,
                             double sx, std::int64_t i0, double dyy,
                             double dzz, double cx, double denom,
                             double tf) {
  const d4 vox = bcast4(ox), vsx = bcast4(sx), vcx = bcast4(cx);
  const d4 vyz0 = bcast4(dyy), vyz1 = bcast4(dzz);
  const d4 vden = bcast4(denom);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double ib = static_cast<double>(i0 + i);
    const d4 idx = d4{ib, ib + 1.0, ib + 2.0, ib + 3.0};
    const d4 px = vox + vsx * idx;
    const d4 dx = px - vcx;
    const d4 r2 = dx * dx + vyz0 + vyz1;
    const d4 arg = -r2 / vden;
    // The exp itself must stay libm-scalar for cross-variant
    // bit-identity of the simulated field.
    dst[i] += std::exp(arg[0]) * tf;
    dst[i + 1] += std::exp(arg[1]) * tf;
    dst[i + 2] += std::exp(arg[2]) * tf;
    dst[i + 3] += std::exp(arg[3]) * tf;
  }
  for (; i < n; ++i) {
    const double px = ox + sx * static_cast<double>(i0 + i);
    const double dx = px - cx;
    const double r2 = dx * dx + dyy + dzz;
    dst[i] += std::exp(-r2 / denom) * tf;
  }
}

void s_vexp(const double* x, double* out, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<d4>(out + i, exp_core<VecOps>(load<d4>(x + i)));
  }
  for (; i < n; ++i) out[i] = exp_core<ScalarOps>(x[i]);
}

void s_vsin(const double* x, double* out, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<d4>(out + i, sin_core<VecOps>(load<d4>(x + i)));
  }
  for (; i < n; ++i) out[i] = sin_core<ScalarOps>(x[i]);
}

void s_vcos(const double* x, double* out, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<d4>(out + i, cos_core<VecOps>(load<d4>(x + i)));
  }
  for (; i < n; ++i) out[i] = cos_core<ScalarOps>(x[i]);
}

typedef std::uint16_t u16x4 __attribute__((vector_size(8)));

void s_quantize_encode(const double* x, std::int64_t n, double lo,
                       double inv_step, std::uint16_t* out) {
  const d4 vlo = bcast4(lo);
  const d4 vinv = bcast4(inv_step);
  const d4 vhalf = bcast4(0.5);
  const d4 vzero = bcast4(0.0);
  const d4 vrange = bcast4(65536.0);
  const d4 vtop = bcast4(65535.0);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const d4 t = (load<d4>(x + i) - vlo) * vinv + vhalf;
    const d4 oob = sel(t >= vrange, vtop, vzero);
    const d4 safe = sel((t >= vzero) & (t < vrange), t, oob);  // NaN -> 0
    const i64x4 code = __builtin_convertvector(safe, i64x4);
    const u16x4 packed = __builtin_convertvector(code, u16x4);
    store<u16x4>(out + i, packed);
  }
  for (; i < n; ++i) out[i] = quantize_one(x[i], lo, inv_step);
}

void s_quantize_decode(const std::uint16_t* q, std::int64_t n, double lo,
                       double step, double* out) {
  const d4 vlo = bcast4(lo);
  const d4 vstep = bcast4(step);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const d4 v = __builtin_convertvector(load<u16x4>(q + i), d4);
    store<d4>(out + i, vlo + v * vstep);
  }
  for (; i < n; ++i) out[i] = lo + static_cast<double>(q[i]) * step;
}

void s_delta_encode(const double* x, const double* prev, std::int64_t n,
                    std::uint64_t* out) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<i64x4>(out + i, load<i64x4>(x + i) ^ load<i64x4>(prev + i));
  }
  for (; i < n; ++i) out[i] = double_bits(x[i]) ^ double_bits(prev[i]);
}

void s_delta_decode(const std::uint64_t* delta, const double* prev,
                    std::int64_t n, double* out) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store<i64x4>(out + i, load<i64x4>(delta + i) ^ load<i64x4>(prev + i));
  }
  for (; i < n; ++i) {
    out[i] = double_from_bits(delta[i] ^ double_bits(prev[i]));
  }
}

std::int64_t s_subsample_gather(const double* x, std::int64_t n_tuples,
                                int components, int stride, double* out) {
  // Pure copies; the memcpy fast paths match the scalar reference
  // bit-for-bit by construction.
  if (stride == 1) {
    std::memcpy(out, x,
                static_cast<std::size_t>(n_tuples) *
                    static_cast<std::size_t>(components) * sizeof(double));
    return n_tuples;
  }
  const std::size_t tuple_bytes =
      static_cast<std::size_t>(components) * sizeof(double);
  std::int64_t kept = 0;
  for (std::int64_t t = 0; t < n_tuples; t += stride, ++kept) {
    std::memcpy(out + kept * components, x + t * components, tuple_bytes);
  }
  return kept;
}

void s_subsample_expand(const double* kept, std::int64_t n_tuples,
                        int components, int stride, double* out) {
  if (stride == 1) {
    std::memcpy(out, kept,
                static_cast<std::size_t>(n_tuples) *
                    static_cast<std::size_t>(components) * sizeof(double));
    return;
  }
  const std::size_t tuple_bytes =
      static_cast<std::size_t>(components) * sizeof(double);
  for (std::int64_t t = 0; t < n_tuples; ++t) {
    std::memcpy(out + t * components, kept + (t / stride) * components,
                tuple_bytes);
  }
}

}  // namespace

const KernelTable kSimdTable = {
    s_reduce_moments, s_histogram_bin, s_accumulate_i64,
    s_dot,            s_fma_accumulate, s_saxpy,
    s_lerp,           s_colormap_apply, s_depth_composite,
    s_raster_span,    s_masked_store_span, s_plane_distance,
    s_magnitude3,     s_oscillator_accumulate, s_vexp,
    s_vsin,           s_vcos,           s_quantize_encode,
    s_quantize_decode, s_delta_encode,  s_delta_decode,
    s_subsample_gather, s_subsample_expand,
};

}  // namespace insitu::kernels::detail
