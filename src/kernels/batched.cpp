// The auto-vectorized variant: the same per-element expressions as the
// generic reference, restructured into branch-free strip-mined loops
// the compiler vectorizes at -O2/-O3. No intrinsics, no vector types —
// portability is the compiler's problem here; simd.cpp is the explicit
// fallback-proof variant.

#include <cmath>
#include <limits>

#include "kernels/detail.hpp"
#include "kernels/table.hpp"
#include "kernels/vmath.hpp"

namespace insitu::kernels::detail {

namespace {

constexpr std::int64_t kStrip = 512;

Moments b_reduce_moments(const double* x, std::int64_t n,
                         const std::uint8_t* skip) {
  Moments m{std::numeric_limits<double>::max(),
            std::numeric_limits<double>::lowest(), 0.0, 0.0, 0};
  if (skip != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (skip[i] != 0) continue;
      const double v = x[i];
      m.min = v < m.min ? v : m.min;
      m.max = m.max < v ? v : m.max;
      m.sum += v;
      m.sum_sq += v * v;
      ++m.count;
    }
    return m;
  }
  // Four parallel accumulators (lane l sees i = l mod 4), merged in lane
  // order — the same association the simd variant uses.
  double mn[4], mx[4], sum[4], ssq[4];
  for (int l = 0; l < 4; ++l) {
    mn[l] = std::numeric_limits<double>::max();
    mx[l] = std::numeric_limits<double>::lowest();
    sum[l] = 0.0;
    ssq[l] = 0.0;
  }
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const double v = x[i + l];
      mn[l] = v < mn[l] ? v : mn[l];
      mx[l] = mx[l] < v ? v : mx[l];
      sum[l] += v;
      ssq[l] += v * v;
    }
  }
  for (int l = 0; l < 4; ++l) {
    m.min = mn[l] < m.min ? mn[l] : m.min;
    m.max = m.max < mx[l] ? mx[l] : m.max;
    m.sum += sum[l];
    m.sum_sq += ssq[l];
  }
  for (; i < n; ++i) {
    const double v = x[i];
    m.min = v < m.min ? v : m.min;
    m.max = m.max < v ? v : m.max;
    m.sum += v;
    m.sum_sq += v * v;
  }
  m.count = n;
  return m;
}

void b_histogram_bin(const double* x, std::int64_t n,
                     const std::uint8_t* skip, double min_value,
                     double width, int num_bins, std::int64_t* bins) {
  if (skip != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (skip[i] != 0) continue;
      ++bins[bin_index(x[i], min_value, width, num_bins)];
    }
    return;
  }
  // Vectorizable index computation into a strip, scalar scatter after.
  const double nb = static_cast<double>(num_bins);
  const double nbm1 = static_cast<double>(num_bins - 1);
  std::int32_t idx[kStrip];
  for (std::int64_t base = 0; base < n; base += kStrip) {
    const std::int64_t len = n - base < kStrip ? n - base : kStrip;
    for (std::int64_t i = 0; i < len; ++i) {
      const double t = (x[base + i] - min_value) / width * nb;
      const double oob = t >= nb ? nbm1 : 0.0;
      const double safe = t >= 0.0 && t < nb ? t : oob;  // NaN -> 0
      idx[i] = static_cast<std::int32_t>(safe);
    }
    for (std::int64_t i = 0; i < len; ++i) ++bins[idx[i]];
  }
}

void b_accumulate_i64(std::int64_t* dst, const std::int64_t* src,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

double b_dot(const double* a, const double* b, std::int64_t n) {
  double sum[4] = {0.0, 0.0, 0.0, 0.0};
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) sum[l] += a[i + l] * b[i + l];
  }
  double total = ((sum[0] + sum[1]) + sum[2]) + sum[3];
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

void b_fma_accumulate(double* dst, const double* a, const double* b,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

void b_saxpy(double* dst, double a, const double* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += a * x[i];
}

void b_lerp(double* dst, const double* a, const double* b, double t,
            std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = a[i] + (b[i] - a[i]) * t;
}

void b_colormap_apply(const double* s, std::int64_t n, double lo, double hi,
                      const std::uint8_t* controls, int ncontrols,
                      std::uint8_t* out) {
  // Vectorizable scaled computation; the lround channel lerp stays
  // scalar (libm call).
  const double range = hi - lo;
  const double span = static_cast<double>(ncontrols - 1);
  double scaled[kStrip];
  for (std::int64_t base = 0; base < n; base += kStrip) {
    const std::int64_t len = n - base < kStrip ? n - base : kStrip;
    if (hi > lo) {
      for (std::int64_t i = 0; i < len; ++i) {
        double t = (s[base + i] - lo) / range;
        t = t >= 0.0 ? t : 0.0;  // NaN -> 0
        t = t > 1.0 ? 1.0 : t;
        scaled[i] = t * span;
      }
    } else {
      for (std::int64_t i = 0; i < len; ++i) scaled[i] = 0.5 * span;
    }
    for (std::int64_t i = 0; i < len; ++i) {
      int idx = static_cast<int>(scaled[i]);
      if (idx > ncontrols - 2) idx = ncontrols - 2;
      const double frac = scaled[i] - static_cast<double>(idx);
      const std::uint8_t* a = controls + 4 * idx;
      const std::uint8_t* b = a + 4;
      std::uint8_t* o = out + 4 * (base + i);
      for (int ch = 0; ch < 4; ++ch) {
        o[ch] = static_cast<std::uint8_t>(std::lround(
            a[ch] + frac * (static_cast<double>(b[ch]) - a[ch])));
      }
    }
  }
}

void b_depth_composite(std::uint8_t* dst_color, float* dst_depth,
                       const std::uint8_t* src_color, const float* src_depth,
                       std::int64_t n) {
  // Branchless select with unconditional stores: if-convertible, so the
  // compiler can vectorize. NaN src depth compares false and keeps dst.
  for (std::int64_t i = 0; i < n; ++i) {
    const bool take = src_depth[i] < dst_depth[i];
    const std::uint32_t m = take ? 0xffffffffu : 0u;
    const std::uint32_t sc = load_u32(src_color + 4 * i);
    const std::uint32_t dc = load_u32(dst_color + 4 * i);
    store_u32(dst_color + 4 * i, (sc & m) | (dc & ~m));
    dst_depth[i] = take ? src_depth[i] : dst_depth[i];
  }
}

void b_raster_span(const RasterTri& t, double py, int x0, std::int64_t n,
                   const float* dst_depth, float* depth, double* scalar,
                   std::uint8_t* inside) {
  // Branchless form of raster_one: | over int comparisons preserves the
  // reference's NaN behavior (NaN weights are not outside, NaN depth is
  // not rejected).
  for (std::int64_t i = 0; i < n; ++i) {
    const double px = static_cast<double>(x0 + i) + 0.5;
    const double w0 =
        ((t.bx - px) * (t.cy - py) - (t.cx - px) * (t.by - py)) * t.inv_area;
    const double w1 =
        ((t.cx - px) * (t.ay - py) - (t.ax - px) * (t.cy - py)) * t.inv_area;
    const double w2 = 1.0 - w0 - w1;
    const int outside = (w0 < 0.0) | (w1 < 0.0) | (w2 < 0.0);
    const float d = static_cast<float>(
        w0 * t.adepth + w1 * t.bdepth + w2 * t.cdepth);
    depth[i] = d;
    scalar[i] = w0 * t.ascalar + w1 * t.bscalar + w2 * t.cscalar;
    const int rejected = (d >= dst_depth[i]) | (d <= 0.0f);
    inside[i] = static_cast<std::uint8_t>((outside | rejected) ^ 1);
  }
}

std::int64_t b_masked_store_span(std::uint8_t* dst_color, float* dst_depth,
                                 const std::uint8_t* colors,
                                 const float* depth,
                                 const std::uint8_t* inside,
                                 std::int64_t n) {
  std::int64_t stored = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint32_t m = inside[i] != 0 ? 0xffffffffu : 0u;
    const std::uint32_t sc = load_u32(colors + 4 * i);
    const std::uint32_t dc = load_u32(dst_color + 4 * i);
    store_u32(dst_color + 4 * i, (sc & m) | (dc & ~m));
    dst_depth[i] = inside[i] != 0 ? depth[i] : dst_depth[i];
    stored += inside[i] != 0;
  }
  return stored;
}

void b_plane_distance(const double* x, const double* y, const double* z,
                      std::int64_t n, double ox, double oy, double oz,
                      double nx, double ny, double nz, double* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = (x[i] - ox) * nx + (y[i] - oy) * ny + (z[i] - oz) * nz;
  }
}

void b_magnitude3(const double* u, std::int64_t su, const double* v,
                  std::int64_t sv, const double* w, std::int64_t sw,
                  std::int64_t n, double* dst) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = u[i * su];
    const double b = v[i * sv];
    const double c = w[i * sw];
    dst[i] = std::sqrt(a * a + b * b + c * c);
  }
}

void b_oscillator_accumulate(double* dst, std::int64_t n, double ox,
                             double sx, std::int64_t i0, double dyy,
                             double dzz, double cx, double denom,
                             double tf) {
  // Vectorizable argument strip; the (bit-identity-mandated) libm exp
  // stays scalar.
  double arg[kStrip];
  for (std::int64_t base = 0; base < n; base += kStrip) {
    const std::int64_t len = n - base < kStrip ? n - base : kStrip;
    for (std::int64_t i = 0; i < len; ++i) {
      const double px = ox + sx * static_cast<double>(i0 + base + i);
      const double dx = px - cx;
      const double r2 = dx * dx + dyy + dzz;
      arg[i] = -r2 / denom;
    }
    for (std::int64_t i = 0; i < len; ++i) {
      dst[base + i] += std::exp(arg[i]) * tf;
    }
  }
}

void b_vexp(const double* x, double* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = exp_core<ScalarOps>(x[i]);
}

void b_vsin(const double* x, double* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = sin_core<ScalarOps>(x[i]);
}

void b_vcos(const double* x, double* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = cos_core<ScalarOps>(x[i]);
}

void b_quantize_encode(const double* x, std::int64_t n, double lo,
                       double inv_step, std::uint16_t* out) {
  // Branchless select chain (same shape as b_histogram_bin's index
  // computation) so the whole loop is if-convertible.
  for (std::int64_t i = 0; i < n; ++i) {
    const double t = (x[i] - lo) * inv_step + 0.5;
    const double oob = t >= 65536.0 ? 65535.0 : 0.0;
    const double safe = t >= 0.0 && t < 65536.0 ? t : oob;  // NaN -> 0
    out[i] = static_cast<std::uint16_t>(safe);
  }
}

void b_quantize_decode(const std::uint16_t* q, std::int64_t n, double lo,
                       double step, double* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = lo + static_cast<double>(q[i]) * step;
  }
}

void b_delta_encode(const double* x, const double* prev, std::int64_t n,
                    std::uint64_t* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = double_bits(x[i]) ^ double_bits(prev[i]);
  }
}

void b_delta_decode(const std::uint64_t* delta, const double* prev,
                    std::int64_t n, double* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = double_from_bits(delta[i] ^ double_bits(prev[i]));
  }
}

std::int64_t b_subsample_gather(const double* x, std::int64_t n_tuples,
                                int components, int stride, double* out) {
  if (stride == 1) {
    std::memcpy(out, x,
                static_cast<std::size_t>(n_tuples) *
                    static_cast<std::size_t>(components) * sizeof(double));
    return n_tuples;
  }
  std::int64_t kept = 0;
  for (std::int64_t t = 0; t < n_tuples; t += stride, ++kept) {
    for (int c = 0; c < components; ++c) {
      out[kept * components + c] = x[t * components + c];
    }
  }
  return kept;
}

void b_subsample_expand(const double* kept, std::int64_t n_tuples,
                        int components, int stride, double* out) {
  if (stride == 1) {
    std::memcpy(out, kept,
                static_cast<std::size_t>(n_tuples) *
                    static_cast<std::size_t>(components) * sizeof(double));
    return;
  }
  for (std::int64_t t = 0; t < n_tuples; ++t) {
    const std::int64_t k = t / stride;
    for (int c = 0; c < components; ++c) {
      out[t * components + c] = kept[k * components + c];
    }
  }
}

}  // namespace

const KernelTable kBatchedTable = {
    b_reduce_moments, b_histogram_bin, b_accumulate_i64,
    b_dot,            b_fma_accumulate, b_saxpy,
    b_lerp,           b_colormap_apply, b_depth_composite,
    b_raster_span,    b_masked_store_span, b_plane_distance,
    b_magnitude3,     b_oscillator_accumulate, b_vexp,
    b_vsin,           b_vcos,           b_quantize_encode,
    b_quantize_decode, b_delta_encode,  b_delta_decode,
    b_subsample_gather, b_subsample_expand,
};

}  // namespace insitu::kernels::detail
