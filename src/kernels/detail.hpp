#pragma once

// Internal: the single-element expressions every variant shares. The
// generic variant is a plain loop over these; batched strip-mines them;
// simd re-expresses the same operation sequence on vector lanes and
// falls back to these for tails. Keeping the expressions in one place
// is what makes the per-element kernels bit-identical across variants.

#include <cmath>
#include <cstdint>
#include <cstring>

#include "kernels/kernels.hpp"

namespace insitu::kernels::detail {

/// Histogram bin index; see kernels.hpp for the semantics contract.
inline int bin_index(double v, double min_value, double width,
                     int num_bins) {
  const double nb = static_cast<double>(num_bins);
  const double scaled = (v - min_value) / width * nb;
  if (scaled >= 0.0) {
    if (scaled < nb) return static_cast<int>(scaled);
    return num_bins - 1;
  }
  return 0;  // negative or NaN
}

/// One colormap lookup; writes 4 bytes.
inline void colormap_one(double s, double lo, double hi,
                         const std::uint8_t* controls, int ncontrols,
                         std::uint8_t* out) {
  double t = hi > lo ? (s - lo) / (hi - lo) : 0.5;
  if (!(t >= 0.0)) t = 0.0;  // clamps -inf and defines NaN
  if (t > 1.0) t = 1.0;
  const double scaled = t * static_cast<double>(ncontrols - 1);
  int idx = static_cast<int>(scaled);
  if (idx > ncontrols - 2) idx = ncontrols - 2;
  const double frac = scaled - static_cast<double>(idx);
  const std::uint8_t* a = controls + 4 * idx;
  const std::uint8_t* b = a + 4;
  for (int ch = 0; ch < 4; ++ch) {
    out[ch] = static_cast<std::uint8_t>(std::lround(
        a[ch] + frac * (static_cast<double>(b[ch]) - a[ch])));
  }
}

/// One raster pixel: fills depth/scalar and returns the inside flag.
inline std::uint8_t raster_one(const RasterTri& t, double px, double py,
                               float dst_depth, float* out_depth,
                               double* out_scalar) {
  const double w0 =
      ((t.bx - px) * (t.cy - py) - (t.cx - px) * (t.by - py)) * t.inv_area;
  const double w1 =
      ((t.cx - px) * (t.ay - py) - (t.ax - px) * (t.cy - py)) * t.inv_area;
  const double w2 = 1.0 - w0 - w1;
  const bool outside = w0 < 0.0 || w1 < 0.0 || w2 < 0.0;
  const float depth = static_cast<float>(
      w0 * t.adepth + w1 * t.bdepth + w2 * t.cdepth);
  *out_depth = depth;
  *out_scalar = w0 * t.ascalar + w1 * t.bscalar + w2 * t.cscalar;
  const bool rejected = depth >= dst_depth || depth <= 0.0f;
  return static_cast<std::uint8_t>(!outside && !rejected);
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof v);
}

inline std::uint64_t double_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

inline double double_from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

/// One quantizer code; see kernels.hpp for the semantics contract
/// (round-to-nearest, saturate to [0, 65535], NaN/negative -> 0).
inline std::uint16_t quantize_one(double v, double lo, double inv_step) {
  const double t = (v - lo) * inv_step + 0.5;
  if (t >= 0.0) {
    if (t < 65536.0) return static_cast<std::uint16_t>(t);
    return 65535;
  }
  return 0;  // negative or NaN
}

}  // namespace insitu::kernels::detail
