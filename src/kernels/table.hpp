#pragma once

// Internal: the dispatch table. One instance per variant, defined in
// generic.cpp / batched.cpp / simd.cpp; kernels.cpp selects between
// them and layers the per-(kernel, variant) counters on top.

#include <cstdint>

#include "kernels/kernels.hpp"

namespace insitu::kernels::detail {

struct KernelTable {
  Moments (*reduce_moments)(const double*, std::int64_t,
                            const std::uint8_t*);
  void (*histogram_bin)(const double*, std::int64_t, const std::uint8_t*,
                        double, double, int, std::int64_t*);
  void (*accumulate_i64)(std::int64_t*, const std::int64_t*, std::int64_t);
  double (*dot)(const double*, const double*, std::int64_t);
  void (*fma_accumulate)(double*, const double*, const double*,
                         std::int64_t);
  void (*saxpy)(double*, double, const double*, std::int64_t);
  void (*lerp)(double*, const double*, const double*, double, std::int64_t);
  void (*colormap_apply)(const double*, std::int64_t, double, double,
                         const std::uint8_t*, int, std::uint8_t*);
  void (*depth_composite)(std::uint8_t*, float*, const std::uint8_t*,
                          const float*, std::int64_t);
  void (*raster_span)(const RasterTri&, double, int, std::int64_t,
                      const float*, float*, double*, std::uint8_t*);
  std::int64_t (*masked_store_span)(std::uint8_t*, float*,
                                    const std::uint8_t*, const float*,
                                    const std::uint8_t*, std::int64_t);
  void (*plane_distance)(const double*, const double*, const double*,
                         std::int64_t, double, double, double, double,
                         double, double, double*);
  void (*magnitude3)(const double*, std::int64_t, const double*,
                     std::int64_t, const double*, std::int64_t,
                     std::int64_t, double*);
  void (*oscillator_accumulate)(double*, std::int64_t, double, double,
                                std::int64_t, double, double, double,
                                double, double);
  void (*vexp)(const double*, double*, std::int64_t);
  void (*vsin)(const double*, double*, std::int64_t);
  void (*vcos)(const double*, double*, std::int64_t);
  void (*quantize_encode)(const double*, std::int64_t, double, double,
                          std::uint16_t*);
  void (*quantize_decode)(const std::uint16_t*, std::int64_t, double, double,
                          double*);
  void (*delta_encode)(const double*, const double*, std::int64_t,
                       std::uint64_t*);
  void (*delta_decode)(const std::uint64_t*, const double*, std::int64_t,
                       double*);
  std::int64_t (*subsample_gather)(const double*, std::int64_t, int, int,
                                   double*);
  void (*subsample_expand)(const double*, std::int64_t, int, int, double*);
};

extern const KernelTable kGenericTable;
extern const KernelTable kBatchedTable;
extern const KernelTable kSimdTable;

}  // namespace insitu::kernels::detail
