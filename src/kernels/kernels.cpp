#include "kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "kernels/table.hpp"

namespace insitu::kernels {

namespace {

const detail::KernelTable* table_for(Variant v) {
  switch (v) {
    case Variant::kGeneric: return &detail::kGenericTable;
    case Variant::kBatched: return &detail::kBatchedTable;
    case Variant::kSimd: return &detail::kSimdTable;
  }
  return &detail::kGenericTable;
}

/// -1 until the first active_variant() call folds in INSITU_KERNELS.
std::atomic<int> g_variant{-1};

/// True when the explicit-SIMD TU's code can run on this CPU. The build
/// may compile simd.cpp for x86-64-v3 (AVX2 + FMA); dispatching there on
/// an older core would be an illegal instruction, so variant selection
/// downgrades kSimd to kBatched when the CPU lacks the ISA.
bool simd_supported() {
#if defined(INSITU_KERNELS_SIMD_NEEDS_AVX2)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return true;
#endif
}

Variant clamp_supported(Variant v) {
  return v == Variant::kSimd && !simd_supported() ? Variant::kBatched : v;
}

bool parse_variant(std::string_view name, Variant* out) {
  if (name == "generic" || name == "scalar") {
    *out = Variant::kGeneric;
    return true;
  }
  if (name == "batched") {
    *out = Variant::kBatched;
    return true;
  }
  if (name == "simd") {
    *out = Variant::kSimd;
    return true;
  }
  return false;
}

struct StatCell {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> elements{0};
  std::atomic<std::uint64_t> bytes{0};
};

StatCell g_stats[kNumKernels][kNumVariants];

/// Relaxed counters: cheap enough for per-chunk granularity, race-free
/// under TSan, and snapshot consistency is not required (deltas are
/// read after rank threads join).
inline void bump(KernelId id, Variant v, std::int64_t elements,
                 std::int64_t bytes) {
  StatCell& c = g_stats[static_cast<int>(id)][static_cast<int>(v)];
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.elements.fetch_add(static_cast<std::uint64_t>(elements),
                       std::memory_order_relaxed);
  c.bytes.fetch_add(static_cast<std::uint64_t>(bytes),
                    std::memory_order_relaxed);
}

}  // namespace

Variant active_variant() {
  int v = g_variant.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Variant>(v);
  Variant from_env = Variant::kSimd;
  if (const char* env = std::getenv("INSITU_KERNELS")) {
    (void)parse_variant(env, &from_env);  // unknown values keep the default
  }
  from_env = clamp_supported(from_env);
  int expected = -1;
  g_variant.compare_exchange_strong(expected, static_cast<int>(from_env),
                                    std::memory_order_relaxed);
  return static_cast<Variant>(g_variant.load(std::memory_order_relaxed));
}

void set_variant(Variant v) {
  g_variant.store(static_cast<int>(clamp_supported(v)),
                  std::memory_order_relaxed);
}

bool set_variant(std::string_view name) {
  Variant v;
  if (!parse_variant(name, &v)) return false;
  set_variant(v);
  return true;
}

std::string_view variant_name(Variant v) {
  switch (v) {
    case Variant::kGeneric: return "generic";
    case Variant::kBatched: return "batched";
    case Variant::kSimd: return "simd";
  }
  return "?";
}

const char* kernel_name(KernelId id) {
  switch (id) {
    case KernelId::kReduceMoments: return "reduce_moments";
    case KernelId::kHistogramBin: return "histogram_bin";
    case KernelId::kAccumulateI64: return "accumulate_i64";
    case KernelId::kDot: return "dot";
    case KernelId::kFmaAccumulate: return "fma_accumulate";
    case KernelId::kSaxpy: return "saxpy";
    case KernelId::kLerp: return "lerp";
    case KernelId::kColormap: return "colormap";
    case KernelId::kDepthComposite: return "depth_composite";
    case KernelId::kRasterSpan: return "raster_span";
    case KernelId::kMaskedStore: return "masked_store";
    case KernelId::kPlaneDistance: return "plane_distance";
    case KernelId::kMagnitude3: return "magnitude3";
    case KernelId::kOscillator: return "oscillator";
    case KernelId::kVexp: return "vexp";
    case KernelId::kVsin: return "vsin";
    case KernelId::kVcos: return "vcos";
    case KernelId::kQuantizeEncode: return "quantize_encode";
    case KernelId::kQuantizeDecode: return "quantize_decode";
    case KernelId::kDeltaEncode: return "delta_encode";
    case KernelId::kDeltaDecode: return "delta_decode";
    case KernelId::kSubsampleGather: return "subsample_gather";
    case KernelId::kSubsampleExpand: return "subsample_expand";
    case KernelId::kCount: break;
  }
  return "?";
}

StatsSnapshot stats_snapshot() {
  StatsSnapshot snap;
  for (int k = 0; k < kNumKernels; ++k) {
    for (int v = 0; v < kNumVariants; ++v) {
      const StatCell& c = g_stats[k][v];
      snap.s[k][v].calls = c.calls.load(std::memory_order_relaxed);
      snap.s[k][v].elements = c.elements.load(std::memory_order_relaxed);
      snap.s[k][v].bytes = c.bytes.load(std::memory_order_relaxed);
    }
  }
  return snap;
}

// ---- dispatching wrappers ----

Moments reduce_moments(const double* x, std::int64_t n,
                       const std::uint8_t* skip) {
  const Variant v = active_variant();
  bump(KernelId::kReduceMoments, v, n, n * (skip != nullptr ? 9 : 8));
  return table_for(v)->reduce_moments(x, n, skip);
}

void histogram_bin(const double* x, std::int64_t n, const std::uint8_t* skip,
                   double min_value, double width, int num_bins,
                   std::int64_t* bins) {
  const Variant v = active_variant();
  bump(KernelId::kHistogramBin, v, n,
       n * (skip != nullptr ? 9 : 8) + static_cast<std::int64_t>(num_bins) * 8);
  table_for(v)->histogram_bin(x, n, skip, min_value, width, num_bins, bins);
}

void accumulate_i64(std::int64_t* dst, const std::int64_t* src,
                    std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kAccumulateI64, v, n, n * 24);
  table_for(v)->accumulate_i64(dst, src, n);
}

double dot(const double* a, const double* b, std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kDot, v, n, n * 16);
  return table_for(v)->dot(a, b, n);
}

void fma_accumulate(double* dst, const double* a, const double* b,
                    std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kFmaAccumulate, v, n, n * 32);
  table_for(v)->fma_accumulate(dst, a, b, n);
}

void saxpy(double* dst, double a, const double* x, std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kSaxpy, v, n, n * 24);
  table_for(v)->saxpy(dst, a, x, n);
}

void lerp(double* dst, const double* a, const double* b, double t,
          std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kLerp, v, n, n * 24);
  table_for(v)->lerp(dst, a, b, t, n);
}

void colormap_apply(const double* s, std::int64_t n, double lo, double hi,
                    const std::uint8_t* controls, int ncontrols,
                    std::uint8_t* out) {
  const Variant v = active_variant();
  bump(KernelId::kColormap, v, n, n * 12);
  table_for(v)->colormap_apply(s, n, lo, hi, controls, ncontrols, out);
}

void depth_composite(std::uint8_t* dst_color, float* dst_depth,
                     const std::uint8_t* src_color, const float* src_depth,
                     std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kDepthComposite, v, n, n * 24);
  table_for(v)->depth_composite(dst_color, dst_depth, src_color, src_depth,
                                n);
}

void raster_span(const RasterTri& tri, double py, int x0, std::int64_t n,
                 const float* dst_depth, float* depth, double* scalar,
                 std::uint8_t* inside) {
  const Variant v = active_variant();
  bump(KernelId::kRasterSpan, v, n, n * 17);
  table_for(v)->raster_span(tri, py, x0, n, dst_depth, depth, scalar,
                            inside);
}

std::int64_t masked_store_span(std::uint8_t* dst_color, float* dst_depth,
                               const std::uint8_t* colors, const float* depth,
                               const std::uint8_t* inside, std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kMaskedStore, v, n, n * 17);
  return table_for(v)->masked_store_span(dst_color, dst_depth, colors, depth,
                                         inside, n);
}

void plane_distance(const double* x, const double* y, const double* z,
                    std::int64_t n, double ox, double oy, double oz,
                    double nx, double ny, double nz, double* out) {
  const Variant v = active_variant();
  bump(KernelId::kPlaneDistance, v, n, n * 32);
  table_for(v)->plane_distance(x, y, z, n, ox, oy, oz, nx, ny, nz, out);
}

void magnitude3(const double* u, std::int64_t su, const double* v,
                std::int64_t sv, const double* w, std::int64_t sw,
                std::int64_t n, double* dst) {
  const Variant var = active_variant();
  bump(KernelId::kMagnitude3, var, n, n * 32);
  table_for(var)->magnitude3(u, su, v, sv, w, sw, n, dst);
}

void oscillator_accumulate(double* dst, std::int64_t n, double ox, double sx,
                           std::int64_t i0, double dyy, double dzz, double cx,
                           double denom, double tf) {
  const Variant v = active_variant();
  bump(KernelId::kOscillator, v, n, n * 16);
  table_for(v)->oscillator_accumulate(dst, n, ox, sx, i0, dyy, dzz, cx,
                                      denom, tf);
}

void vexp(const double* x, double* out, std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kVexp, v, n, n * 16);
  table_for(v)->vexp(x, out, n);
}

void vsin(const double* x, double* out, std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kVsin, v, n, n * 16);
  table_for(v)->vsin(x, out, n);
}

void vcos(const double* x, double* out, std::int64_t n) {
  const Variant v = active_variant();
  bump(KernelId::kVcos, v, n, n * 16);
  table_for(v)->vcos(x, out, n);
}

void quantize_encode(const double* x, std::int64_t n, double lo,
                     double inv_step, std::uint16_t* out) {
  const Variant v = active_variant();
  bump(KernelId::kQuantizeEncode, v, n, n * 10);
  table_for(v)->quantize_encode(x, n, lo, inv_step, out);
}

void quantize_decode(const std::uint16_t* q, std::int64_t n, double lo,
                     double step, double* out) {
  const Variant v = active_variant();
  bump(KernelId::kQuantizeDecode, v, n, n * 10);
  table_for(v)->quantize_decode(q, n, lo, step, out);
}

void delta_encode(const double* x, const double* prev, std::int64_t n,
                  std::uint64_t* out) {
  const Variant v = active_variant();
  bump(KernelId::kDeltaEncode, v, n, n * 24);
  table_for(v)->delta_encode(x, prev, n, out);
}

void delta_decode(const std::uint64_t* delta, const double* prev,
                  std::int64_t n, double* out) {
  const Variant v = active_variant();
  bump(KernelId::kDeltaDecode, v, n, n * 24);
  table_for(v)->delta_decode(delta, prev, n, out);
}

std::int64_t subsample_gather(const double* x, std::int64_t n_tuples,
                              int components, int stride, double* out) {
  const Variant v = active_variant();
  const std::int64_t kept =
      stride > 0 ? (n_tuples + stride - 1) / stride : n_tuples;
  bump(KernelId::kSubsampleGather, v, n_tuples * components,
       (n_tuples + kept) * components * 8);
  return table_for(v)->subsample_gather(x, n_tuples, components, stride, out);
}

void subsample_expand(const double* kept, std::int64_t n_tuples,
                      int components, int stride, double* out) {
  const Variant v = active_variant();
  const std::int64_t nk =
      stride > 0 ? (n_tuples + stride - 1) / stride : n_tuples;
  bump(KernelId::kSubsampleExpand, v, n_tuples * components,
       (n_tuples + nk) * components * 8);
  table_for(v)->subsample_expand(kept, n_tuples, components, stride, out);
}

}  // namespace insitu::kernels
