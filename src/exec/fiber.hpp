#pragma once

// exec::FiberScheduler — M:N scheduling of rank continuations.
//
// The SPMD runtime used to launch one OS thread per virtual rank, which
// caps *executed* scale at a few dozen ranks. Here each virtual rank is a
// fiber: a pooled, schedulable continuation with its own (small, lazily
// committed) stack, multiplexed onto the workers of an exec::TaskPool.
// A fiber runs until it would block at a message-match point — a receive
// with no matching message, a collective rendezvous that is not yet
// complete — and then *parks*: it registers itself with the WaitSet
// guarding the condition, switches back to its carrier worker, and the
// worker picks up the next runnable fiber. When the condition is
// notified the fiber re-enters the ready queue and resumes on whichever
// worker frees up first (fibers migrate between carriers; the runtime
// moves a rank's thread-local state — observability context, memory
// tracker adoption, log label — along with it via the resume/suspend
// hooks).
//
// This is what lets the full pipeline — collectives, compositing
// ladders, in transit staging — really *execute* at 10K+ virtual ranks
// on one machine (docs/SCALING.md): the cost per rank drops from an OS
// thread (~8 MiB stack, kernel scheduling) to a fiber (~256 KiB virtual,
// a few touched pages, user-space switches only at match points).
//
// Determinism: the scheduler makes no ordering decisions the thread
// backend does not already make. Message matching stays FIFO per
// (source, tag), collective combines happen in arrival order exactly as
// before, and virtual time is pure arithmetic over agreed values — so
// virtual times, histograms, and image hashes are bit-identical between
// the `threads` and `mn` backends (bench/ablation_sched gates this).
//
// Blocking in a fiber through plain condition variables (e.g. waiting on
// a std::future from a TaskPool) is *safe* but pins the carrier for the
// duration; only WaitSet-based waits release the worker. All comm-layer
// match points use WaitSet.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include <ucontext.h>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define INSITU_EXEC_TSAN_FIBERS 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define INSITU_EXEC_TSAN_FIBERS 1
#endif
#ifndef INSITU_EXEC_TSAN_FIBERS
#define INSITU_EXEC_TSAN_FIBERS 0
#endif

namespace insitu::exec {

class FiberScheduler;

/// One rank continuation. Created by FiberScheduler::spawn; lives until
/// its body returns. All members are managed by the scheduler; user code
/// only ever sees Fiber* as an opaque token via current_fiber().
class Fiber {
 public:
  Fiber() = default;
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Scheduler this fiber belongs to.
  FiberScheduler* scheduler() const { return scheduler_; }

 private:
  friend class FiberScheduler;
  friend class WaitSet;

  enum class State : int {
    kReady,    ///< in the ready queue (or about to be enqueued by owner)
    kRunning,  ///< executing on a carrier worker
    kParking,  ///< announced a park; still unwinding onto its carrier
    kParked,   ///< fully switched out; a waker may enqueue it
    kFinished  ///< body returned
  };

  /// makecontext entry point (the Fiber* arrives split across two ints).
  static void entry(unsigned int hi, unsigned int lo);

  /// Switch from the fiber back to its carrier. Must be called on the
  /// fiber, with no locks held, after state_ was set to kParking (or
  /// kFinished by entry()).
  void suspend();

  ucontext_t context_;                    // where the fiber last left off
  ucontext_t* return_context_ = nullptr;  // the current carrier's context
  std::atomic<State> state_{State::kReady};
  std::function<void()> body_;
  std::function<void()> on_resume_;   // carrier-side, before switch-in
  std::function<void()> on_suspend_;  // carrier-side, after switch-out
  FiberScheduler* scheduler_ = nullptr;
  void* stack_block_ = nullptr;  // mmap block (guard page + stack)
  std::size_t stack_bytes_ = 0;  // usable stack size (excludes guard)

#if INSITU_EXEC_TSAN_FIBERS
  // TSan must be told about user-space context switches or it sees one OS
  // thread interleaving unrelated stacks and reports phantom races.
  void* tsan_fiber_ = nullptr;   // this fiber's TSan identity
  void* tsan_parent_ = nullptr;  // the hosting carrier's TSan identity
#endif
};

/// The fiber the calling thread is currently running, or nullptr when
/// called from a plain thread (rank threads, TaskPool workers, main).
Fiber* current_fiber();

/// Condition-variable lookalike that understands fibers. Non-fiber
/// callers block on an internal std::condition_variable exactly like
/// before; fiber callers park and release their carrier worker. Both
/// kinds of waiter are woken by notify_all(). All calls must hold the
/// one mutex that guards the associated state (the same discipline as a
/// condition variable).
///
/// Waiters may additionally register under a 64-bit wakeup key
/// (wait_key) so wakers can target just the waiters a state change can
/// actually unblock (notify_key) instead of stampeding every waiter.
/// Keys only filter wakeups — they carry no data, and the usual
/// predicate-loop discipline still applies. Fiber waiters are woken
/// exactly by key; thread waiters share one condition variable, so a
/// matching notify may wake non-matching thread waiters spuriously
/// (harmless, and no notify is issued at all when no thread waiter can
/// match).
class WaitSet {
 public:
  /// Matches every key, in both directions: an any-key waiter is woken
  /// by every notify, and notify_key(kAnyKey) behaves like notify_all.
  static constexpr std::uint64_t kAnyKey = ~std::uint64_t{0};

  /// Block until notified. Spurious wakeups happen (exactly as with a
  /// condition variable): always wait in a predicate loop.
  void wait(std::unique_lock<std::mutex>& lock) { wait_key(lock, kAnyKey); }

  template <typename Predicate>
  void wait(std::unique_lock<std::mutex>& lock, Predicate predicate) {
    while (!predicate()) wait(lock);
  }

  /// Block until a notify matching `key` (notify_all, notify_key(key),
  /// or notify_key(kAnyKey)). Spurious wakeups happen.
  void wait_key(std::unique_lock<std::mutex>& lock, std::uint64_t key);

  template <typename Predicate>
  void wait_key(std::unique_lock<std::mutex>& lock, std::uint64_t key,
                Predicate predicate) {
    while (!predicate()) wait_key(lock, key);
  }

  /// Wake every registered waiter (cv waiters and parked fibers). Must be
  /// called while holding the mutex the waiters registered under; safe
  /// from plain threads and fibers alike.
  void notify_all();

  /// Wake only the waiters registered under `key` (plus any-key waiters).
  /// Same locking discipline as notify_all.
  void notify_key(std::uint64_t key);

 private:
  std::condition_variable cv_;
  std::vector<std::pair<Fiber*, std::uint64_t>> fibers_;
  std::multiset<std::uint64_t> cv_keys_;  // keys of blocked cv waiters
};

class TaskPool;

/// Runs N spawned fibers to completion on M TaskPool workers (M << N).
/// Usage: construct, spawn() every fiber, then run() once; run() blocks
/// the caller until all fibers finish. Not reusable after run().
class FiberScheduler {
 public:
  struct Options {
    /// Carrier workers; <= 0 means one per hardware thread.
    int workers = 0;
    /// Usable stack bytes per fiber (rounded up to whole pages); 0 means
    /// the 256 KiB default. Stacks are mmap'd with a guard page below
    /// and recycled through a process-wide free list, so only the pages
    /// a rank actually touches ever become resident. Very large runs
    /// (>= 8192 fibers) drop the per-stack guard pages and carve stacks
    /// from shared slabs instead, keeping the kernel VMA count far below
    /// vm.max_map_count at 45K+ fibers.
    std::size_t stack_bytes = 0;
  };

  FiberScheduler();
  explicit FiberScheduler(Options options);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Per-fiber carrier-side hooks, run on the worker thread that hosts
  /// the fiber: on_resume immediately before every switch-in, on_suspend
  /// immediately after every switch-out (including the final one). The
  /// SPMD runtime uses them to migrate a rank's thread-local state with
  /// its continuation.
  struct Hooks {
    std::function<void()> on_resume;
    std::function<void()> on_suspend;
  };

  /// Create a runnable fiber. Must be called before run().
  void spawn(std::function<void()> body, Hooks hooks = {});

  /// Run every spawned fiber to completion. Blocks the calling thread
  /// (which does not itself carry fibers).
  void run();

  /// Resolved worker count.
  int workers() const { return workers_; }

  /// Number of fibers spawned so far.
  std::size_t size() const { return fibers_.size(); }

  /// Make a parked (or parking) fiber runnable again. Called by
  /// WaitSet::notify_all; safe from any thread. Calls on fibers that are
  /// already ready/running/finished are ignored.
  void wake(Fiber* fiber);

  /// Stacks parked in the process-wide free list, in bytes (test hook).
  static std::size_t pooled_stack_bytes();

 private:
  friend class Fiber;
  friend class WaitSet;

  void carrier_main();
  void resume(Fiber* fiber);
  void enqueue(Fiber* fiber);

  int workers_ = 1;
  std::size_t stack_bytes_ = 0;
  // Whether stacks get a PROT_NONE guard page. run() turns this off for
  // very large fiber counts, where the 2-VMAs-per-guarded-stack cost
  // would exhaust vm.max_map_count (see fiber.cpp).
  bool guard_stacks_ = true;

  std::mutex mutex_;
  std::condition_variable ready_cv_;  // carriers: a fiber is runnable
  std::condition_variable done_cv_;   // run(): all fibers finished
  std::deque<Fiber*> ready_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::size_t finished_ = 0;
  bool stop_ = false;

  std::unique_ptr<TaskPool> carriers_;
};

}  // namespace insitu::exec
