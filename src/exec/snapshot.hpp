#pragma once

// exec::snapshot_mesh — decouple analysis input from live simulation memory.
//
// The asynchronous bridge hands each time step's data to a worker thread,
// but zero-copy arrays wrap buffers the simulation overwrites on its next
// step. A snapshot therefore deep-copies every zero-copy array into owned
// storage (automatically charged to the calling rank's MemoryTracker, so
// Fig-7-style memory rows show the async footprint), while arrays the
// data model already owns are immutable from the simulation's point of
// view and are shared without copying. Geometry follows the same rule:
// analytic descriptions (ImageData boxes, structured dims) are copied by
// value, zero-copy coordinate arrays deep, owned ones shared.

#include <cstddef>

#include "data/multiblock.hpp"
#include "pal/status.hpp"

namespace insitu::exec {

struct MeshSnapshot {
  data::MultiBlockPtr mesh;
  std::size_t copied_bytes = 0;  ///< deep-copied out of zero-copy wraps
  std::size_t shared_bytes = 0;  ///< shared with already-owned arrays
};

/// Snapshot one rank's multiblock view. Runs entirely on the caller; the
/// caller charges the modeled memcpy cost for `copied_bytes` to whichever
/// clock owns the copy (the simulation clock, for the async bridge).
/// Snapshot copies allocate through pal::buffer_pool(), so retiring one
/// step's snapshot (recycle_mesh, or just dropping it) hands its buffers
/// to the next step's snapshot.
StatusOr<MeshSnapshot> snapshot_mesh(const data::MultiBlockDataSet& mesh);

/// Return every uniquely-held owned array in the mesh to the buffer pool
/// (DataArray::recycle). The async bridge calls this when a snapshot is
/// retired; arrays still shared with the simulation are left alone.
void recycle_mesh(data::MultiBlockDataSet& mesh);

}  // namespace insitu::exec
