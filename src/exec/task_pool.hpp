#pragma once

// exec::TaskPool — fixed-size worker pool over a bounded MPMC task queue.
//
// The execution engine behind the asynchronous in situ bridge
// (core::AsyncBridge) and the data-parallel kernels (exec::parallel_for):
//
//   * submit() hands a callable to the pool and returns a std::future for
//     its result; an exception thrown by the task propagates through the
//     future to whoever calls get().
//   * The queue is bounded: once `queue_capacity` tasks are waiting,
//     submit() blocks the producer until a worker drains one — the
//     building block for backpressure.
//   * shutdown() (and the destructor) drains every queued task before
//     joining the workers; nothing submitted is silently lost.
//
// Worker threads are plain std::threads with no rank identity: code that
// must charge a rank's MemoryTracker or record spans installs the rank's
// context inside the task itself (see core::AsyncBridge).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace insitu::exec {

class TaskPool {
 public:
  /// `threads`: worker count (clamped to >= 1). `queue_capacity`: maximum
  /// queued (not yet running) tasks; 0 means unbounded.
  explicit TaskPool(int threads, std::size_t queue_capacity = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is a worker of *any* TaskPool. Used by
  /// parallel_for to run nested parallelism serially instead of
  /// re-entering a pool it might itself be servicing.
  static bool on_worker_thread();

  /// Enqueue a callable; may block while the queue is at capacity.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Blocks until the queue is empty and no task is running.
  void wait_idle();

  /// Drains the queue, then joins the workers. Idempotent (also run by
  /// the destructor). Submitting after shutdown is invalid.
  void shutdown();

 private:
  void enqueue(std::function<void()> task);
  void worker_main();

  std::mutex mutex_;
  std::condition_variable not_empty_;  // workers: a task is available
  std::condition_variable not_full_;   // producers: the queue has room
  std::condition_variable idle_;       // wait_idle(): fully drained
  std::deque<std::function<void()>> queue_;
  std::size_t capacity_;
  int running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// ---- parallel_for ----

/// Sets the process-wide worker budget used by parallel_for; `threads <= 1`
/// keeps kernels serial. Wired from the CLIs' `threads=N` option; callable
/// at any time (the shared pool is rebuilt on next use).
void set_global_threads(int threads);
int global_threads();

/// The shared pool behind parallel_for: `global_threads() - 1` workers
/// (the calling thread is the remaining one), or nullptr when serial.
TaskPool* global_pool();

/// Splits [begin, end) into `grain`-sized chunks and runs
/// `body(chunk_begin, chunk_end)` across the shared pool with the caller
/// participating. Chunks are disjoint and cover the range exactly once,
/// so bodies that write to per-index or per-chunk slots produce output
/// identical to the serial loop for any thread count — parallel_for
/// speeds up wall clock without perturbing results or virtual time.
/// Falls back to a single serial call when the pool is disabled, the
/// range fits in one chunk, or the caller is itself a pool worker.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Number of chunks parallel_for will use for a range; kernels that merge
/// per-chunk partial results size their scratch with this.
inline std::int64_t parallel_chunk_count(std::int64_t begin, std::int64_t end,
                                         std::int64_t grain) {
  if (end <= begin) return 0;
  if (grain < 1) grain = 1;
  return (end - begin + grain - 1) / grain;
}

}  // namespace insitu::exec
