#include "exec/fiber.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include <sys/mman.h>
#include <unistd.h>

#include "exec/task_pool.hpp"

#if INSITU_EXEC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace insitu::exec {

namespace {

constexpr std::size_t kDefaultStackBytes = 256 * 1024;

thread_local Fiber* t_current_fiber = nullptr;

std::size_t page_size() {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

// ---- stack cache ----
//
// Fiber stacks are mmap'd (one guard page below the usable range; the
// stack grows down into it) rather than drawn from pal::buffer_pool: a
// vector-backed pool would memset-commit the full stack on resize —
// gigabytes of touched pages at 45K ranks — while MAP_NORESERVE plus
// lazy faulting commits only what each rank actually uses. Retired
// stacks go to a process-wide free list keyed by size, with
// madvise(MADV_DONTNEED) returning their pages to the OS, so a long
// run's RSS tracks live stack usage, not cumulative fiber count.

struct StackCache {
  std::mutex mutex;
  // usable-size -> blocks (block = guard page + usable pages)
  std::map<std::size_t, std::vector<void*>> free_blocks;
  std::size_t pooled_bytes = 0;
  // Guardless-slab fallback (see acquire_stack_block): current slab
  // carve-out state, one entry per block size in use.
  struct Slab {
    char* next = nullptr;
    char* end = nullptr;
  };
  std::map<std::size_t, Slab> slabs;
  bool guardless = false;
};

constexpr int kSlabBlocks = 64;  // stacks carved per guardless slab

// Above this many fibers a scheduler requests guardless slab stacks up
// front: 2 VMAs x fibers would otherwise brush against vm.max_map_count
// (default 65530) somewhere past ~32K concurrent stacks.
constexpr std::size_t kGuardlessFiberThreshold = 8192;

StackCache& stack_cache() {
  static StackCache* cache = new StackCache();  // leaked: process lifetime
  return *cache;
}

/// Carves one block out of the current guardless slab for `usable`,
/// mapping a fresh slab when the current one is exhausted. Caller holds
/// cache.mutex. Returns nullptr if the slab mmap itself fails.
void* acquire_from_slab(StackCache& cache, std::size_t usable) {
  const std::size_t block_bytes = page_size() + usable;
  StackCache::Slab& slab = cache.slabs[usable];
  if (slab.next == slab.end) {
    void* mem =
        ::mmap(nullptr, block_bytes * kSlabBlocks, PROT_READ | PROT_WRITE,
               MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED) return nullptr;
    slab.next = static_cast<char*>(mem);
    slab.end = slab.next + block_bytes * kSlabBlocks;
  }
  char* block = slab.next;
  slab.next += block_bytes;
  return block;
}

/// Returns the block base. Usable stack is [base + page, base + page +
/// usable); with `guard` the base page is PROT_NONE so an overrun faults
/// instead of silently corrupting a neighbouring allocation.
///
/// Every guarded stack costs two kernel VMAs (the mprotect splits the
/// mapping), so tens of thousands of concurrent fibers exhaust
/// vm.max_map_count (default 65530) long before they exhaust memory.
/// Callers that know they will host that many fibers pass guard=false
/// and blocks are carved kSlabBlocks at a time from shared slabs — one
/// VMA per slab — trading per-fiber overflow detection for a ~128x
/// smaller map-table footprint.
void* acquire_stack_block(std::size_t usable, bool guard) {
  StackCache& cache = stack_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mutex);
    auto it = cache.free_blocks.find(usable);
    if (it != cache.free_blocks.end() && !it->second.empty()) {
      void* block = it->second.back();
      it->second.pop_back();
      cache.pooled_bytes -= usable;
      return block;
    }
    if (!guard || cache.guardless) {
      void* block = acquire_from_slab(cache, usable);
      if (block != nullptr) return block;
      std::fprintf(stderr,
                   "fiber: mmap of a %d-stack slab (%zu-byte stacks) failed; "
                   "out of address space or vm.max_map_count\n",
                   kSlabBlocks, usable);
      std::abort();
    }
  }
  const std::size_t page = page_size();
  void* block = ::mmap(nullptr, page + usable, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (block == MAP_FAILED) {
    // Likely the VMA table, not memory: fall back to guardless slabs for
    // the rest of the process. (If the table is already full this mmap
    // fails too and we abort with the message above.)
    std::lock_guard<std::mutex> lock(cache.mutex);
    if (!cache.guardless) {
      cache.guardless = true;
      std::fprintf(stderr,
                   "fiber: per-stack mmap failed; switching to guardless "
                   "slab stacks (check vm.max_map_count)\n");
    }
    block = acquire_from_slab(cache, usable);
    if (block == nullptr) {
      std::fprintf(stderr, "fiber: mmap of %zu-byte stack failed\n", usable);
      std::abort();
    }
    return block;
  }
  if (::mprotect(block, page, PROT_NONE) != 0) {
    // The split failed (usually the VMA table); the page stays writable,
    // so the stack simply has no guard. Stop splitting future stacks.
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.guardless = true;
  }
  return block;
}

void release_stack_block(void* block, std::size_t usable) {
  const std::size_t page = page_size();
  ::madvise(static_cast<char*>(block) + page, usable, MADV_DONTNEED);
  StackCache& cache = stack_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.free_blocks[usable].push_back(block);
  cache.pooled_bytes += usable;
}

}  // namespace

Fiber* current_fiber() { return t_current_fiber; }

void Fiber::entry(unsigned int hi, unsigned int lo) {
  auto* fiber = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  fiber->body_();
  fiber->body_ = nullptr;  // release captured state while still alive
  fiber->state_.store(State::kFinished, std::memory_order_release);
  fiber->suspend();
  // Unreachable: the carrier never resumes a finished fiber.
}

void Fiber::suspend() {
#if INSITU_EXEC_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_parent_, 0);
#endif
  ::swapcontext(&context_, return_context_);
}

// ---- WaitSet ----

void WaitSet::wait_key(std::unique_lock<std::mutex>& lock,
                       std::uint64_t key) {
  Fiber* fiber = t_current_fiber;
  if (fiber == nullptr) {
    // The waiter's key stays registered while it blocks so notify_key can
    // skip the condition variable entirely when no thread waiter matches.
    // Insert/erase both run under the caller's mutex; cv_.wait reacquires
    // it before returning.
    const auto it = cv_keys_.insert(key);
    cv_.wait(lock);
    cv_keys_.erase(it);
    return;
  }
  // Register under the caller's mutex: any notify after our unlock runs
  // with the mutex held, so it observes both the registration and the
  // kParking state, and resolves the park/wake race through the CAS
  // protocol in FiberScheduler::wake / resume.
  fibers_.emplace_back(fiber, key);
  fiber->state_.store(Fiber::State::kParking, std::memory_order_release);
  lock.unlock();
  fiber->suspend();  // resumes here once a waker re-enqueued us
  lock.lock();
}

void WaitSet::notify_all() { notify_key(kAnyKey); }

void WaitSet::notify_key(std::uint64_t key) {
  if (!cv_keys_.empty() &&
      (key == kAnyKey || cv_keys_.count(key) > 0 ||
       cv_keys_.count(kAnyKey) > 0)) {
    // One condition variable serves every thread waiter; wake them all
    // and let non-matching ones re-wait (spurious wakeups are already
    // part of the contract).
    cv_.notify_all();
  }
  if (fibers_.empty()) return;
  if (key == kAnyKey) {
    std::vector<std::pair<Fiber*, std::uint64_t>> to_wake;
    to_wake.swap(fibers_);
    for (const auto& [fiber, k] : to_wake) fiber->scheduler()->wake(fiber);
    return;
  }
  std::vector<Fiber*> to_wake;
  auto keep = fibers_.begin();
  for (auto it = fibers_.begin(); it != fibers_.end(); ++it) {
    if (it->second == key || it->second == kAnyKey) {
      to_wake.push_back(it->first);
    } else {
      *keep++ = *it;
    }
  }
  fibers_.erase(keep, fibers_.end());
  for (Fiber* fiber : to_wake) fiber->scheduler()->wake(fiber);
}

// ---- FiberScheduler ----

FiberScheduler::FiberScheduler() : FiberScheduler(Options{}) {}

FiberScheduler::FiberScheduler(Options options) {
  workers_ = options.workers > 0
                 ? options.workers
                 : static_cast<int>(
                       std::max(1u, std::thread::hardware_concurrency()));
  stack_bytes_ = round_up_pages(
      options.stack_bytes > 0 ? options.stack_bytes : kDefaultStackBytes);
}

FiberScheduler::~FiberScheduler() = default;

void FiberScheduler::spawn(std::function<void()> body, Hooks hooks) {
  auto fiber = std::make_unique<Fiber>();
  fiber->body_ = std::move(body);
  fiber->on_resume_ = std::move(hooks.on_resume);
  fiber->on_suspend_ = std::move(hooks.on_suspend);
  fiber->scheduler_ = this;
  std::lock_guard<std::mutex> lock(mutex_);
  ready_.push_back(fiber.get());
  fibers_.push_back(std::move(fiber));
}

void FiberScheduler::run() {
  if (fibers_.empty()) return;
  guard_stacks_ = fibers_.size() < kGuardlessFiberThreshold;
  const int carriers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(workers_), fibers_.size()));
  carriers_ = std::make_unique<TaskPool>(carriers);
  for (int i = 0; i < carriers; ++i) {
    carriers_->submit([this] { carrier_main(); });
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return finished_ == fibers_.size(); });
  stop_ = true;
  ready_cv_.notify_all();
  lock.unlock();
  carriers_->shutdown();
  carriers_.reset();
}

void FiberScheduler::carrier_main() {
  for (;;) {
    Fiber* fiber = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop_ set and nothing runnable
      fiber = ready_.front();
      ready_.pop_front();
    }
    resume(fiber);
  }
}

void FiberScheduler::resume(Fiber* fiber) {
  if (fiber->stack_block_ == nullptr) {
    // First run: allocate the stack and arm the entry trampoline.
    fiber->stack_bytes_ = stack_bytes_;
    fiber->stack_block_ = acquire_stack_block(stack_bytes_, guard_stacks_);
    ::getcontext(&fiber->context_);
    fiber->context_.uc_stack.ss_sp =
        static_cast<char*>(fiber->stack_block_) + page_size();
    fiber->context_.uc_stack.ss_size = stack_bytes_;
    fiber->context_.uc_link = nullptr;  // explicit switch-back only
    const auto addr = reinterpret_cast<std::uintptr_t>(fiber);
    ::makecontext(&fiber->context_, reinterpret_cast<void (*)()>(&Fiber::entry),
                  2, static_cast<unsigned int>(addr >> 32),
                  static_cast<unsigned int>(addr & 0xffffffffu));
#if INSITU_EXEC_TSAN_FIBERS
    fiber->tsan_fiber_ = __tsan_create_fiber(0);
#endif
  }

  ucontext_t carrier_context;
  // Fibers migrate between carriers: the return path must be the context
  // of *this* resume call, never a stale one from a previous carrier.
  fiber->return_context_ = &carrier_context;
  fiber->state_.store(Fiber::State::kRunning, std::memory_order_relaxed);
  if (fiber->on_resume_) fiber->on_resume_();
  t_current_fiber = fiber;
#if INSITU_EXEC_TSAN_FIBERS
  fiber->tsan_parent_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(fiber->tsan_fiber_, 0);
#endif
  ::swapcontext(&carrier_context, &fiber->context_);
  // Back on the carrier: the fiber either parked or finished.
  t_current_fiber = nullptr;
  if (fiber->on_suspend_) fiber->on_suspend_();

  if (fiber->state_.load(std::memory_order_acquire) ==
      Fiber::State::kFinished) {
#if INSITU_EXEC_TSAN_FIBERS
    __tsan_destroy_fiber(fiber->tsan_fiber_);
    fiber->tsan_fiber_ = nullptr;
#endif
    release_stack_block(fiber->stack_block_, fiber->stack_bytes_);
    fiber->stack_block_ = nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    if (++finished_ == fibers_.size()) done_cv_.notify_all();
    return;
  }

  // The fiber announced a park (kParking). Complete it: publish kParked
  // so a waker both flips the state and enqueues. If a waker already
  // flipped kParking to kReady, the notify landed before the switch-out
  // finished and the enqueue is on us.
  Fiber::State expected = Fiber::State::kParking;
  if (!fiber->state_.compare_exchange_strong(expected, Fiber::State::kParked,
                                             std::memory_order_acq_rel)) {
    enqueue(fiber);
  }
}

void FiberScheduler::wake(Fiber* fiber) {
  Fiber::State state = fiber->state_.load(std::memory_order_acquire);
  for (;;) {
    switch (state) {
      case Fiber::State::kParked:
        // Fully switched out: make it ready and hand it to a carrier.
        if (fiber->state_.compare_exchange_weak(state, Fiber::State::kReady,
                                                std::memory_order_acq_rel)) {
          enqueue(fiber);
          return;
        }
        break;  // state reloaded; re-dispatch
      case Fiber::State::kParking:
        // Still unwinding onto its carrier: flip the state; that carrier
        // sees its park CAS fail and does the enqueue itself.
        if (fiber->state_.compare_exchange_weak(state, Fiber::State::kReady,
                                                std::memory_order_acq_rel)) {
          return;
        }
        break;
      default:
        return;  // kReady / kRunning / kFinished: spurious notify
    }
  }
}

void FiberScheduler::enqueue(Fiber* fiber) {
  std::lock_guard<std::mutex> lock(mutex_);
  ready_.push_back(fiber);
  ready_cv_.notify_one();
}

std::size_t FiberScheduler::pooled_stack_bytes() {
  StackCache& cache = stack_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.pooled_bytes;
}

}  // namespace insitu::exec
