#include "exec/snapshot.hpp"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/image_data.hpp"
#include "data/rectilinear_grid.hpp"
#include "data/structured_grid.hpp"
#include "data/unstructured_grid.hpp"

namespace insitu::exec {

namespace {

using data::DataArrayPtr;
using data::DataSetPtr;

// Zero-copy wraps are copied (the simulation will reuse that memory);
// owned arrays are shared: the data model never mutates them in place
// after publication.
DataArrayPtr snap_array(const DataArrayPtr& array, MeshSnapshot* stats) {
  if (array == nullptr) return nullptr;
  if (!array->is_zero_copy()) {
    stats->shared_bytes += array->size_bytes();
    return array;
  }
  stats->copied_bytes += array->size_bytes();
  return array->deep_copy();
}

Status snap_fields(const data::FieldCollection& in, data::FieldCollection& out,
                   MeshSnapshot* stats) {
  // names() iterates the underlying map in key order, so snapshot layout
  // (and therefore downstream byte output) is deterministic.
  for (const std::string& name : in.names()) {
    DataArrayPtr copy = snap_array(in.get(name), stats);
    if (copy == nullptr) {
      return Status::Internal("snapshot: field '" + name + "' vanished");
    }
    out.add(std::move(copy));
  }
  return Status::Ok();
}

StatusOr<DataSetPtr> snap_dataset(const data::DataSet& in,
                                  MeshSnapshot* stats) {
  DataSetPtr out;
  switch (in.kind()) {
    case data::DataSetKind::kImageData: {
      const auto& img = static_cast<const data::ImageData&>(in);
      out = std::make_shared<data::ImageData>(img.box(), img.origin(),
                                              img.spacing());
      break;
    }
    case data::DataSetKind::kRectilinearGrid: {
      const auto& grid = static_cast<const data::RectilinearGrid&>(in);
      out = std::make_shared<data::RectilinearGrid>(
          snap_array(grid.coords_array(0), stats),
          snap_array(grid.coords_array(1), stats),
          snap_array(grid.coords_array(2), stats));
      break;
    }
    case data::DataSetKind::kStructuredGrid: {
      const auto& grid = static_cast<const data::StructuredGrid&>(in);
      out = std::make_shared<data::StructuredGrid>(
          snap_array(grid.points_array(), stats),
          std::array<std::int64_t, 3>{grid.point_dim(0), grid.point_dim(1),
                                      grid.point_dim(2)});
      break;
    }
    case data::DataSetKind::kUnstructuredGrid: {
      const auto& grid = static_cast<const data::UnstructuredGrid&>(in);
      const std::int64_t ncells = grid.num_cells();
      std::vector<data::CellType> types;
      types.reserve(static_cast<std::size_t>(ncells));
      for (std::int64_t c = 0; c < ncells; ++c) {
        types.push_back(grid.cell_type(c));
      }
      out = std::make_shared<data::UnstructuredGrid>(
          snap_array(grid.points_array(), stats), grid.connectivity(),
          grid.offsets(), std::move(types));
      break;
    }
  }
  if (out == nullptr) {
    return Status::Internal("snapshot: unknown dataset kind");
  }
  INSITU_RETURN_IF_ERROR(
      snap_fields(in.point_fields(), out->point_fields(), stats));
  INSITU_RETURN_IF_ERROR(
      snap_fields(in.cell_fields(), out->cell_fields(), stats));
  return out;
}

}  // namespace

StatusOr<MeshSnapshot> snapshot_mesh(const data::MultiBlockDataSet& mesh) {
  MeshSnapshot snapshot;
  snapshot.mesh =
      std::make_shared<data::MultiBlockDataSet>(mesh.num_global_blocks());
  for (std::size_t b = 0; b < mesh.num_local_blocks(); ++b) {
    INSITU_ASSIGN_OR_RETURN(DataSetPtr block,
                            snap_dataset(*mesh.block(b), &snapshot));
    snapshot.mesh->add_block(mesh.block_id(b), std::move(block));
  }
  return snapshot;
}

namespace {

// FieldCollection::get hands out one extra reference, so use_count()==2
// means the dataset holds the only other one: nobody else can still read
// the array, and its storage may go back to the pool.
void recycle_unique(DataArrayPtr array) {
  if (array != nullptr && !array->is_zero_copy() && array.use_count() == 2) {
    array->recycle();
  }
}

void recycle_fields(data::FieldCollection& fields) {
  for (const std::string& name : fields.names()) {
    recycle_unique(fields.get(name));
  }
}

}  // namespace

void recycle_mesh(data::MultiBlockDataSet& mesh) {
  for (std::size_t b = 0; b < mesh.num_local_blocks(); ++b) {
    data::DataSet& block = *mesh.block(b);
    recycle_fields(block.point_fields());
    recycle_fields(block.cell_fields());
    switch (block.kind()) {
      case data::DataSetKind::kImageData:
        break;  // analytic geometry, no arrays
      case data::DataSetKind::kRectilinearGrid: {
        auto& grid = static_cast<data::RectilinearGrid&>(block);
        for (int a = 0; a < 3; ++a) recycle_unique(grid.coords_array(a));
        break;
      }
      case data::DataSetKind::kStructuredGrid:
        recycle_unique(
            static_cast<data::StructuredGrid&>(block).points_array());
        break;
      case data::DataSetKind::kUnstructuredGrid:
        recycle_unique(
            static_cast<data::UnstructuredGrid&>(block).points_array());
        break;
    }
  }
}

}  // namespace insitu::exec
