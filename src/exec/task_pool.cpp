#include "exec/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace insitu::exec {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

TaskPool::TaskPool(int threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

TaskPool::~TaskPool() { shutdown(); }

bool TaskPool::on_worker_thread() { return t_on_worker; }

void TaskPool::enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return shutdown_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void TaskPool::worker_main() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown requested and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      not_full_.notify_one();
    }
    task();  // packaged_task routes exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void TaskPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

// ---- parallel_for ----

namespace {
std::mutex g_pool_mutex;
int g_threads = 1;
bool g_pool_current = true;  // does g_pool match g_threads?
std::unique_ptr<TaskPool> g_pool;
}  // namespace

void set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const int clamped = threads < 1 ? 1 : threads;
  if (clamped != g_threads) {
    g_threads = clamped;
    g_pool_current = false;
  }
}

int global_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_threads;
}

TaskPool* global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool_current) {
    g_pool.reset();  // joins the old workers
    if (g_threads > 1) {
      g_pool = std::make_unique<TaskPool>(g_threads - 1);
    }
    g_pool_current = true;
  }
  return g_pool.get();
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>&
                      body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t nchunks = parallel_chunk_count(begin, end, grain);
  TaskPool* pool = global_pool();
  if (pool == nullptr || nchunks == 1 || TaskPool::on_worker_thread()) {
    body(begin, end);
    return;
  }

  std::atomic<std::int64_t> next{0};
  auto run_chunks = [&]() {
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      body(lo, hi);
    }
  };

  const std::int64_t max_helpers =
      std::min<std::int64_t>(pool->num_threads(), nchunks - 1);
  std::vector<std::future<void>> helpers;
  helpers.reserve(static_cast<std::size_t>(max_helpers));
  for (std::int64_t i = 0; i < max_helpers; ++i) {
    helpers.push_back(pool->submit(run_chunks));
  }

  // The caller is a worker too; every chunk not taken by a helper runs
  // here, so progress never depends on pool availability.
  std::exception_ptr error;
  try {
    run_chunks();
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& helper : helpers) {
    try {
      helper.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace insitu::exec
