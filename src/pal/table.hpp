#pragma once

// ASCII table printing for bench output. Every bench binary reproduces one
// paper table/figure; TablePrinter renders its rows in a uniform format so
// EXPERIMENTS.md entries can be pasted directly from bench output.

#include <string>
#include <vector>

namespace insitu::pal {

/// Column-aligned text table with a title and optional footnotes.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_note(std::string note);

  /// Format a double with the given precision, trimming trailing zeros.
  static std::string num(double value, int precision = 3);
  /// Format a byte count using binary units (KiB / MiB / GiB).
  static std::string bytes(double byte_count);

  /// Render to a string (used by tests) and print to stdout.
  std::string to_string() const;
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace insitu::pal
