#include "pal/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace insitu::pal {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    // Accept key=value, --key=value, --key value, and bare --key switches.
    const bool dashed = arg.starts_with("--");
    if (dashed) arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      cfg.set(std::string(trim(arg.substr(0, eq))),
              std::string(trim(arg.substr(eq + 1))));
    } else if (dashed) {
      // "--key value" consumes the next token as the value unless it looks
      // like another option, in which case "--key" is a boolean switch.
      const std::string_view next =
          i + 1 < argc ? std::string_view(argv[i + 1]) : std::string_view{};
      if (!next.empty() && !next.starts_with("--") &&
          next.find('=') == std::string_view::npos) {
        cfg.set(std::string(trim(arg)), std::string(trim(next)));
        ++i;
      } else {
        cfg.set(std::string(trim(arg)), "true");
      }
    } else {
      cfg.positional_.emplace_back(arg);
    }
  }
  return cfg;
}

StatusOr<Config> Config::from_text(std::string_view text) {
  Config cfg;
  std::string section;
  int lineno = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++lineno;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": unterminated section header");
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": expected key=value, got '" +
                                     std::string(line) + "'");
    }
    std::string key(trim(line.substr(0, eq)));
    if (!section.empty()) key = section + "." + key;
    cfg.set(std::move(key), std::string(trim(line.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return entries_.find(std::string(key)) != entries_.end();
}

StatusOr<std::string> Config::get_string(std::string_view key) const {
  auto it = entries_.find(std::string(key));
  if (it == entries_.end()) {
    return Status::NotFound("missing config key '" + std::string(key) + "'");
  }
  return it->second;
}

StatusOr<std::int64_t> Config::get_int(std::string_view key) const {
  INSITU_ASSIGN_OR_RETURN(std::string text, get_string(key));
  std::int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("config key '" + std::string(key) +
                                   "' is not an integer: '" + text + "'");
  }
  return value;
}

StatusOr<double> Config::get_double(std::string_view key) const {
  INSITU_ASSIGN_OR_RETURN(std::string text, get_string(key));
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    return Status::InvalidArgument("config key '" + std::string(key) +
                                   "' is not a number: '" + text + "'");
  }
  return value;
}

StatusOr<bool> Config::get_bool(std::string_view key) const {
  INSITU_ASSIGN_OR_RETURN(std::string text, get_string(key));
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  return Status::InvalidArgument("config key '" + std::string(key) +
                                 "' is not a boolean: '" + text + "'");
}

std::string Config::get_string_or(std::string_view key,
                                  std::string fallback) const {
  auto result = get_string(key);
  return result.ok() ? *result : std::move(fallback);
}

std::int64_t Config::get_int_or(std::string_view key,
                                std::int64_t fallback) const {
  auto result = get_int(key);
  return result.ok() ? *result : fallback;
}

double Config::get_double_or(std::string_view key, double fallback) const {
  auto result = get_double(key);
  return result.ok() ? *result : fallback;
}

bool Config::get_bool_or(std::string_view key, bool fallback) const {
  auto result = get_bool(key);
  return result.ok() ? *result : fallback;
}

StatusOr<std::vector<double>> Config::get_double_list(
    std::string_view key) const {
  INSITU_ASSIGN_OR_RETURN(std::string text, get_string(key));
  std::vector<double> values;
  for (const std::string& field : split(text, ',')) {
    const std::string item(trim(field));
    if (item.empty()) continue;
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + item.size()) {
      return Status::InvalidArgument("config key '" + std::string(key) +
                                     "': bad list element '" + item + "'");
    }
    values.push_back(v);
  }
  return values;
}

std::vector<std::string> Config::keys_in_section(
    std::string_view section) const {
  const std::string prefix = std::string(section) + ".";
  std::vector<std::string> keys;
  for (const auto& [key, value] : entries_) {
    if (key.starts_with(prefix)) keys.push_back(key.substr(prefix.size()));
  }
  return keys;
}

}  // namespace insitu::pal
