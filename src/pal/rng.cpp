#include "pal/rng.hpp"

#include <cmath>

namespace insitu::pal {

double Rng::fast_sqrt(double x) { return std::sqrt(x); }
double Rng::fast_log(double x) { return std::log(x); }

}  // namespace insitu::pal
