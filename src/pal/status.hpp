#pragma once

// Status / StatusOr: lightweight expected-style error propagation used at
// module boundaries instead of exceptions. Mirrors the error-handling
// discipline of large HPC codebases where exceptions across library
// boundaries are forbidden.

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace insitu {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kAborted,
};

/// Human-readable name for a status code.
constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

/// Result of an operation that can fail without a payload.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(insitu::to_string(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result of an operation that yields a value of type T or an error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK status from an expression. Usage:
//   INSITU_RETURN_IF_ERROR(DoThing());
#define INSITU_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::insitu::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

// Assign the value of a StatusOr expression or propagate its error. Usage:
//   INSITU_ASSIGN_OR_RETURN(auto v, MakeThing());
#define INSITU_ASSIGN_OR_RETURN(decl, expr)           \
  auto INSITU_CONCAT_(_sor_, __LINE__) = (expr);      \
  if (!INSITU_CONCAT_(_sor_, __LINE__).ok())          \
    return INSITU_CONCAT_(_sor_, __LINE__).status();  \
  decl = std::move(INSITU_CONCAT_(_sor_, __LINE__)).value()

#define INSITU_CONCAT_INNER_(a, b) a##b
#define INSITU_CONCAT_(a, b) INSITU_CONCAT_INNER_(a, b)

}  // namespace insitu
