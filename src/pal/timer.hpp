#pragma once

// Wall-clock timing helpers. The virtual clock used for modeled cluster
// time lives in comm/; this header is for real elapsed time only.

#include <chrono>
#include <cstdint>

namespace insitu::pal {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or last reset().
  std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations (init / per-step / finalize), the
/// measurement structure used throughout the paper's figures.
class PhaseTimer {
 public:
  void add(double seconds) {
    total_ += seconds;
    ++count_;
    if (seconds > max_) max_ = seconds;
    if (count_ == 1 || seconds < min_) min_ = seconds;
  }

  double total() const { return total_; }
  std::int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : total_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }

 private:
  double total_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::int64_t count_ = 0;
};

}  // namespace insitu::pal
