#pragma once

// Wall-clock timing helpers. The virtual clock used for modeled cluster
// time lives in comm/; this header is for real elapsed time only.

#include <chrono>
#include <cstdint>

namespace insitu::pal {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or last reset().
  std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations (init / per-step / finalize), the
/// measurement structure used throughout the paper's figures.
///
/// Empty-timer semantics are explicit: with no samples, total/mean/min/max
/// all report 0.0 (check count() or has_samples() to distinguish "no
/// samples" from "samples of zero"). The first add() initializes min and
/// max to that sample, so negative durations — which can appear when
/// callers difference virtual clocks across ranks — are handled exactly,
/// not clamped against a zero-initialized state.
class PhaseTimer {
 public:
  void add(double seconds) {
    total_ += seconds;
    ++count_;
    if (count_ == 1) {
      min_ = seconds;
      max_ = seconds;
    } else {
      if (seconds < min_) min_ = seconds;
      if (seconds > max_) max_ = seconds;
    }
  }

  bool has_samples() const { return count_ > 0; }
  double total() const { return total_; }
  std::int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : total_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void reset() { *this = PhaseTimer{}; }

 private:
  double total_ = 0.0;
  double min_ = 0.0;   // valid only when count_ > 0
  double max_ = 0.0;   // valid only when count_ > 0
  std::int64_t count_ = 0;
};

}  // namespace insitu::pal
