#pragma once

// Per-rank memory accounting with high-water-mark tracking.
//
// The paper reports memory footprint as "the sum of the high water marks
// from all MPI ranks". Our ranks are threads, so /proc VmHWM cannot
// separate them; instead all data-model and substrate allocations are
// registered with the rank's MemoryTracker, giving deterministic
// per-rank footprints that can be summed exactly as the paper does.
//
// Counters are atomic: the async execution engine (src/exec) lets pooled
// worker threads allocate on behalf of a rank, so a rank thread and its
// worker may charge the same tracker concurrently. A worker adopts its
// rank's tracker with ScopedMemoryTracker; a thread with no adopted
// tracker charges its own private one.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace insitu::pal {

/// Tracks bytes currently allocated and the high-water mark for one rank.
/// allocate/release/readers are safe to call from multiple threads.
class MemoryTracker {
 public:
  void allocate(std::size_t bytes) {
    const std::size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Raise-only CAS: a concurrent allocation may have published a higher
    // mark between the load and the exchange; retry until ours is either
    // installed or no longer the maximum.
    std::size_t hw = high_water_.load(std::memory_order_relaxed);
    while (now > hw && !high_water_.compare_exchange_weak(
                           hw, now, std::memory_order_relaxed)) {
    }
  }

  void release(std::size_t bytes) {
    // Clamp at zero on unmatched releases without letting concurrent
    // releases wrap the counter.
    std::size_t cur = current_.load(std::memory_order_relaxed);
    while (!current_.compare_exchange_weak(cur,
                                           bytes > cur ? 0 : cur - bytes,
                                           std::memory_order_relaxed)) {
    }
  }

  std::size_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::size_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Resets both counters; used between bench configurations.
  void reset() {
    current_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

  /// Record a baseline (e.g. executable + startup footprint) so reports can
  /// separate "startup" from "run high-water" as Fig 7 does.
  void set_baseline(std::size_t bytes) { baseline_ = bytes; }
  std::size_t baseline_bytes() const { return baseline_; }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> high_water_{0};
  std::size_t baseline_ = 0;
};

/// The tracker charged by the calling thread: the thread's own private
/// tracker, or the one adopted via ScopedMemoryTracker (how exec worker
/// threads charge the rank that owns them). SPMD code and the data model
/// charge allocations here.
MemoryTracker& rank_memory_tracker();

/// Swap the calling thread's adopted tracker, returning the previous one
/// (null when none was adopted). The M:N scheduler uses this from its
/// fiber resume/suspend hooks: a rank continuation's tracker follows it
/// across carrier workers, where the RAII scoping of ScopedMemoryTracker
/// cannot (the install and restore happen on different stack frames).
MemoryTracker* exchange_adopted_memory_tracker(MemoryTracker* tracker);

/// RAII redirection of the calling thread's allocations to another rank's
/// tracker. Installed by worker threads that run analyses on behalf of a
/// rank so snapshots and analysis state appear in that rank's footprint.
class ScopedMemoryTracker {
 public:
  explicit ScopedMemoryTracker(MemoryTracker* tracker);
  ~ScopedMemoryTracker();

  ScopedMemoryTracker(const ScopedMemoryTracker&) = delete;
  ScopedMemoryTracker& operator=(const ScopedMemoryTracker&) = delete;

 private:
  MemoryTracker* saved_;
};

/// RAII registration of a block of bytes against the calling rank.
class TrackedBytes {
 public:
  TrackedBytes() = default;
  explicit TrackedBytes(std::size_t bytes) : bytes_(bytes) {
    rank_memory_tracker().allocate(bytes_);
  }
  ~TrackedBytes() { rank_memory_tracker().release(bytes_); }

  TrackedBytes(const TrackedBytes&) = delete;
  TrackedBytes& operator=(const TrackedBytes&) = delete;

  TrackedBytes(TrackedBytes&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  TrackedBytes& operator=(TrackedBytes&& other) noexcept {
    if (this != &other) {
      rank_memory_tracker().release(bytes_);
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Change the tracked size (e.g. on vector resize).
  void resize(std::size_t bytes) {
    rank_memory_tracker().release(bytes_);
    bytes_ = bytes;
    rank_memory_tracker().allocate(bytes_);
  }

  std::size_t bytes() const { return bytes_; }

 private:
  std::size_t bytes_ = 0;
};

/// Process-wide resident-set high-water mark from the OS (VmHWM), in bytes.
/// Used to report whole-process numbers alongside the per-rank trackers.
std::uint64_t process_high_water_bytes();

}  // namespace insitu::pal
