#pragma once

// Per-rank memory accounting with high-water-mark tracking.
//
// The paper reports memory footprint as "the sum of the high water marks
// from all MPI ranks". Our ranks are threads, so /proc VmHWM cannot
// separate them; instead all data-model and substrate allocations are
// registered with the thread-local MemoryTracker, giving deterministic
// per-rank footprints that can be summed exactly as the paper does.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace insitu::pal {

/// Tracks bytes currently allocated and the high-water mark for one rank.
class MemoryTracker {
 public:
  void allocate(std::size_t bytes) {
    current_ += bytes;
    if (current_ > high_water_) high_water_ = current_;
  }

  void release(std::size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  std::size_t current_bytes() const { return current_; }
  std::size_t high_water_bytes() const { return high_water_; }

  /// Resets both counters; used between bench configurations.
  void reset() {
    current_ = 0;
    high_water_ = 0;
  }

  /// Record a baseline (e.g. executable + startup footprint) so reports can
  /// separate "startup" from "run high-water" as Fig 7 does.
  void set_baseline(std::size_t bytes) { baseline_ = bytes; }
  std::size_t baseline_bytes() const { return baseline_; }

 private:
  std::size_t current_ = 0;
  std::size_t high_water_ = 0;
  std::size_t baseline_ = 0;
};

/// The tracker for the calling rank (thread). SPMD code and the data model
/// charge allocations here.
MemoryTracker& rank_memory_tracker();

/// RAII registration of a block of bytes against the calling rank.
class TrackedBytes {
 public:
  TrackedBytes() = default;
  explicit TrackedBytes(std::size_t bytes) : bytes_(bytes) {
    rank_memory_tracker().allocate(bytes_);
  }
  ~TrackedBytes() { rank_memory_tracker().release(bytes_); }

  TrackedBytes(const TrackedBytes&) = delete;
  TrackedBytes& operator=(const TrackedBytes&) = delete;

  TrackedBytes(TrackedBytes&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  TrackedBytes& operator=(TrackedBytes&& other) noexcept {
    if (this != &other) {
      rank_memory_tracker().release(bytes_);
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Change the tracked size (e.g. on vector resize).
  void resize(std::size_t bytes) {
    rank_memory_tracker().release(bytes_);
    bytes_ = bytes;
    rank_memory_tracker().allocate(bytes_);
  }

  std::size_t bytes() const { return bytes_; }

 private:
  std::size_t bytes_ = 0;
};

/// Process-wide resident-set high-water mark from the OS (VmHWM), in bytes.
/// Used to report whole-process numbers alongside the per-rank trackers.
std::uint64_t process_high_water_bytes();

}  // namespace insitu::pal
