#pragma once

// Per-rank memory accounting with high-water-mark tracking.
//
// The paper reports memory footprint as "the sum of the high water marks
// from all MPI ranks". Our ranks are threads, so /proc VmHWM cannot
// separate them; instead all data-model and substrate allocations are
// registered with the rank's MemoryTracker, giving deterministic
// per-rank footprints that can be summed exactly as the paper does.
//
// Counters are atomic: the async execution engine (src/exec) lets pooled
// worker threads allocate on behalf of a rank, so a rank thread and its
// worker may charge the same tracker concurrently. A worker adopts its
// rank's tracker with ScopedMemoryTracker; a thread with no adopted
// tracker charges its own private one.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace insitu::pal {

/// Tracks bytes currently allocated and the high-water mark for one rank.
/// allocate/release/readers are safe to call from multiple threads.
///
/// Trackers can be chained: a rank tracker with a parent (set_parent)
/// forwards every allocate/release upward, so a tenant-level tracker sees
/// the rolled-up footprint of all of its session's ranks while each rank
/// keeps its own private accounting. Pool-parked bytes never reach any
/// rank tracker (they live in the pool's private tracker, the PR 4
/// arrangement), so the roll-up is pooling-invariant: a tenant's usage
/// reads the same whether its buffers are recycled or freed.
///
/// A tracker may also carry a soft byte limit (set_limit): crossing it
/// never aborts or throws, it only latches a sticky over_limit() flag and
/// counts overage_events(). The multi-tenant service reads the flag to
/// degrade (not kill) sessions whose tenant exceeds its quota.
class MemoryTracker {
 public:
  void allocate(std::size_t bytes) {
    const std::size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Raise-only CAS: a concurrent allocation may have published a higher
    // mark between the load and the exchange; retry until ours is either
    // installed or no longer the maximum.
    std::size_t hw = high_water_.load(std::memory_order_relaxed);
    while (now > hw && !high_water_.compare_exchange_weak(
                           hw, now, std::memory_order_relaxed)) {
    }
    const std::size_t limit = limit_.load(std::memory_order_relaxed);
    if (limit != 0 && now > limit) {
      over_limit_.store(true, std::memory_order_relaxed);
      overage_events_.fetch_add(1, std::memory_order_relaxed);
    }
    if (parent_ != nullptr) parent_->allocate(bytes);
  }

  void release(std::size_t bytes) {
    // Clamp at zero on unmatched releases without letting concurrent
    // releases wrap the counter.
    std::size_t cur = current_.load(std::memory_order_relaxed);
    while (!current_.compare_exchange_weak(cur,
                                           bytes > cur ? 0 : cur - bytes,
                                           std::memory_order_relaxed)) {
    }
    if (parent_ != nullptr) parent_->release(bytes);
  }

  std::size_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::size_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Resets both counters; used between bench configurations.
  void reset() {
    current_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

  /// Record a baseline (e.g. executable + startup footprint) so reports can
  /// separate "startup" from "run high-water" as Fig 7 does.
  void set_baseline(std::size_t bytes) { baseline_ = bytes; }
  std::size_t baseline_bytes() const { return baseline_; }

  /// Roll this tracker's traffic up into `parent` as well (one level is
  /// enough in practice: rank trackers -> tenant tracker). Set before the
  /// tracker sees traffic; not synchronized against concurrent
  /// allocate/release.
  void set_parent(MemoryTracker* parent) { parent_ = parent; }
  MemoryTracker* parent() const { return parent_; }

  /// Soft byte quota: 0 means unlimited. Crossing the limit latches
  /// over_limit() and bumps overage_events(); allocation always proceeds.
  void set_limit(std::size_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }
  std::size_t limit_bytes() const {
    return limit_.load(std::memory_order_relaxed);
  }
  bool over_limit() const {
    return over_limit_.load(std::memory_order_relaxed);
  }
  std::uint64_t overage_events() const {
    return overage_events_.load(std::memory_order_relaxed);
  }
  void clear_over_limit() {
    over_limit_.store(false, std::memory_order_relaxed);
    overage_events_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> limit_{0};
  std::atomic<bool> over_limit_{false};
  std::atomic<std::uint64_t> overage_events_{0};
  MemoryTracker* parent_ = nullptr;
  std::size_t baseline_ = 0;
};

/// The tracker charged by the calling thread: the thread's own private
/// tracker, or the one adopted via ScopedMemoryTracker (how exec worker
/// threads charge the rank that owns them). SPMD code and the data model
/// charge allocations here.
MemoryTracker& rank_memory_tracker();

/// Swap the calling thread's adopted tracker, returning the previous one
/// (null when none was adopted). The M:N scheduler uses this from its
/// fiber resume/suspend hooks: a rank continuation's tracker follows it
/// across carrier workers, where the RAII scoping of ScopedMemoryTracker
/// cannot (the install and restore happen on different stack frames).
MemoryTracker* exchange_adopted_memory_tracker(MemoryTracker* tracker);

/// RAII redirection of the calling thread's allocations to another rank's
/// tracker. Installed by worker threads that run analyses on behalf of a
/// rank so snapshots and analysis state appear in that rank's footprint.
class ScopedMemoryTracker {
 public:
  explicit ScopedMemoryTracker(MemoryTracker* tracker);
  ~ScopedMemoryTracker();

  ScopedMemoryTracker(const ScopedMemoryTracker&) = delete;
  ScopedMemoryTracker& operator=(const ScopedMemoryTracker&) = delete;

 private:
  MemoryTracker* saved_;
};

/// RAII registration of a block of bytes against the calling rank.
///
/// The charged tracker is pinned at construction: releases always return
/// to the tracker that took the allocate, even when the object is
/// destroyed (or moved-into) on a thread with a *different* adopted
/// tracker — e.g. a pooled buffer charged by tenant A's rank and retired
/// by an exec worker or another tenant's thread. Before the pin, such
/// cross-adoption destruction leaked bytes into A's current count forever
/// (and under-counted the destroyer), which broke per-tenant quota
/// accounting the moment trackers became adopted instead of thread-owned.
class TrackedBytes {
 public:
  TrackedBytes() = default;
  explicit TrackedBytes(std::size_t bytes)
      : bytes_(bytes), tracker_(&rank_memory_tracker()) {
    tracker_->allocate(bytes_);
  }
  ~TrackedBytes() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
  }

  TrackedBytes(const TrackedBytes&) = delete;
  TrackedBytes& operator=(const TrackedBytes&) = delete;

  TrackedBytes(TrackedBytes&& other) noexcept
      : bytes_(other.bytes_), tracker_(other.tracker_) {
    other.bytes_ = 0;
    other.tracker_ = nullptr;
  }
  TrackedBytes& operator=(TrackedBytes&& other) noexcept {
    if (this != &other) {
      if (tracker_ != nullptr) tracker_->release(bytes_);
      bytes_ = other.bytes_;
      tracker_ = other.tracker_;
      other.bytes_ = 0;
      other.tracker_ = nullptr;
    }
    return *this;
  }

  /// Change the tracked size (e.g. on vector resize). Stays on the pinned
  /// tracker; a default-constructed instance pins the caller's tracker on
  /// first resize.
  void resize(std::size_t bytes) {
    if (tracker_ == nullptr) tracker_ = &rank_memory_tracker();
    tracker_->release(bytes_);
    bytes_ = bytes;
    tracker_->allocate(bytes_);
  }

  std::size_t bytes() const { return bytes_; }

 private:
  std::size_t bytes_ = 0;
  MemoryTracker* tracker_ = nullptr;
};

/// Process-wide resident-set high-water mark from the OS (VmHWM), in bytes.
/// Used to report whole-process numbers alongside the per-rank trackers.
std::uint64_t process_high_water_bytes();

}  // namespace insitu::pal
