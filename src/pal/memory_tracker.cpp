#include "pal/memory_tracker.hpp"

#include <cstdio>
#include <cstring>

namespace insitu::pal {

namespace {
thread_local MemoryTracker t_own_tracker;
thread_local MemoryTracker* t_adopted_tracker = nullptr;
}  // namespace

MemoryTracker& rank_memory_tracker() {
  return t_adopted_tracker != nullptr ? *t_adopted_tracker : t_own_tracker;
}

ScopedMemoryTracker::ScopedMemoryTracker(MemoryTracker* tracker)
    : saved_(t_adopted_tracker) {
  t_adopted_tracker = tracker;
}

ScopedMemoryTracker::~ScopedMemoryTracker() { t_adopted_tracker = saved_; }

MemoryTracker* exchange_adopted_memory_tracker(MemoryTracker* tracker) {
  MemoryTracker* previous = t_adopted_tracker;
  t_adopted_tracker = tracker;
  return previous;
}

std::uint64_t process_high_water_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace insitu::pal
