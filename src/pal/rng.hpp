#pragma once

// Deterministic, splittable random number generation (splitmix64 +
// xoshiro256**). Every stochastic element of the reproduction — oscillator
// placement, I/O interference, proxy initial conditions — draws from a
// seeded Rng so all runs are bit-reproducible.

#include <cstdint>

namespace insitu::pal {

/// splitmix64: used to expand a user seed into xoshiro state and to derive
/// independent per-rank streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent stream, e.g. one per rank.
  Rng split(std::uint64_t stream) const {
    std::uint64_t sm = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = fast_sqrt(-2.0 * fast_log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Thin wrappers so <cmath> stays out of this header's public surface.
  static double fast_sqrt(double x);
  static double fast_log(double x);

  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace insitu::pal
