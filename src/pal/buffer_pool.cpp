#include "pal/buffer_pool.hpp"

#include <bit>

namespace insitu::pal {

namespace {

std::size_t ceil_pow2(std::size_t bytes) {
  return std::bit_ceil(bytes == 0 ? std::size_t{1} : bytes);
}

}  // namespace

int BufferPool::bucket_for_request(std::size_t bytes) const {
  const std::size_t rounded =
      ceil_pow2(bytes < options_.min_bucket_bytes ? options_.min_bucket_bytes
                                                  : bytes);
  return std::bit_width(rounded) - 1;
}

int BufferPool::bucket_for_capacity(std::size_t bytes) const {
  return std::bit_width(bytes) - 1;  // floor: capacity fills this bucket
}

std::vector<std::byte> BufferPool::acquire(std::size_t bytes) {
  const int bucket = bucket_for_request(bytes);
  const std::size_t bucket_bytes = std::size_t{1} << bucket;
  const bool pooled = enabled_.load(std::memory_order_relaxed) &&
                      bytes <= options_.max_pooled_bytes;
  if (pooled) {
    std::lock_guard<std::mutex> lock(mutex_);
    // Smallest adequate parked buffer: callers that acquire with a small
    // hint and grow in place (serializers) release into a larger bucket
    // than they request from, so an exact-bucket lookup would never reuse
    // their storage.
    for (int b = bucket; b < kNumBuckets; ++b) {
      std::vector<std::vector<std::byte>>& list = buckets_[b];
      if (list.empty()) continue;
      std::vector<std::byte> buffer = std::move(list.back());
      list.pop_back();
      --free_buffers_;
      parked_.release(buffer.capacity());
      ++stats_.hits;
      stats_.bytes_reused += bytes;
      buffer.clear();
      return buffer;
    }
    ++stats_.misses;
    stats_.bytes_allocated += bucket_bytes;
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    stats_.bytes_allocated += bytes > bucket_bytes ? bytes : bucket_bytes;
  }
  std::vector<std::byte> buffer;
  buffer.reserve(bytes > bucket_bytes ? bytes : bucket_bytes);
  return buffer;
}

void BufferPool::release(std::vector<std::byte>&& buffer) {
  const std::size_t capacity = buffer.capacity();
  if (capacity == 0) return;
  std::vector<std::byte> doomed;  // freed outside the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.releases;
    if (!enabled_.load(std::memory_order_relaxed)) {
      doomed = std::move(buffer);
    } else if (capacity > options_.max_pooled_bytes ||
               capacity < options_.min_bucket_bytes) {
      ++stats_.evictions;
      doomed = std::move(buffer);
    } else {
      const int bucket = bucket_for_capacity(capacity);
      std::vector<std::vector<std::byte>>& list = buckets_[bucket];
      if (list.size() >= options_.max_buffers_per_bucket) {
        ++stats_.evictions;
        doomed = std::move(buffer);
      } else {
        buffer.clear();
        list.push_back(std::move(buffer));
        ++free_buffers_;
        parked_.allocate(capacity);
      }
    }
  }
}

void BufferPool::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  if (!enabled) clear();
}

bool BufferPool::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

void BufferPool::clear() {
  std::vector<std::vector<std::byte>> doomed;  // freed outside the lock
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& list : buckets_) {
    for (auto& buffer : list) {
      parked_.release(buffer.capacity());
      doomed.push_back(std::move(buffer));
    }
    list.clear();
  }
  free_buffers_ = 0;
}

void BufferPool::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = BufferPoolStats{};
  const std::size_t parked_now = parked_.current_bytes();
  parked_.reset();
  parked_.allocate(parked_now);  // keep parked bytes, restart the high-water
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

BufferPoolStats BufferPool::stats_since(const BufferPoolStats& start) const {
  const BufferPoolStats now = stats();
  BufferPoolStats delta;
  delta.hits = now.hits - start.hits;
  delta.misses = now.misses - start.misses;
  delta.evictions = now.evictions - start.evictions;
  delta.releases = now.releases - start.releases;
  delta.bytes_reused = now.bytes_reused - start.bytes_reused;
  delta.bytes_allocated = now.bytes_allocated - start.bytes_allocated;
  return delta;
}

std::size_t BufferPool::free_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_buffers_;
}

namespace {
thread_local BufferPool* t_adopted_pool = nullptr;
}  // namespace

BufferPool& default_buffer_pool() {
  static BufferPool* pool = new BufferPool();  // leaked: see header
  return *pool;
}

BufferPool& buffer_pool() {
  return t_adopted_pool != nullptr ? *t_adopted_pool : default_buffer_pool();
}

BufferPool* exchange_adopted_buffer_pool(BufferPool* pool) {
  BufferPool* previous = t_adopted_pool;
  t_adopted_pool = pool;
  return previous;
}

}  // namespace insitu::pal
