#include "pal/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace insitu::pal {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;
thread_local std::string t_label;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_thread_log_label(std::string label) { t_label = std::move(label); }

void log_message(LogLevel level, std::string_view msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (t_label.empty()) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(level_name(level).size()),
                 level_name(level).data(), static_cast<int>(msg.size()),
                 msg.data());
  } else {
    std::fprintf(stderr, "[%.*s][%s] %.*s\n",
                 static_cast<int>(level_name(level).size()),
                 level_name(level).data(), t_label.c_str(),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace insitu::pal
