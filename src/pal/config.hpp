#pragma once

// Key=value configuration store with typed accessors, plus parsing from
// command-line arguments and simple "ini-like" text (used for Libsim-like
// session files and miniapp input decks).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pal/status.hpp"

namespace insitu::pal {

/// Ordered key=value store. Section-qualified keys use "section.key".
class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; tokens without '=' are collected as
  /// positional arguments. argv[0] is skipped.
  static Config from_args(int argc, const char* const* argv);

  /// Parse ini-like text:
  ///   # comment
  ///   [section]
  ///   key = value
  /// Keys inside sections are stored as "section.key".
  static StatusOr<Config> from_text(std::string_view text);

  void set(std::string key, std::string value);

  bool has(std::string_view key) const;

  StatusOr<std::string> get_string(std::string_view key) const;
  StatusOr<std::int64_t> get_int(std::string_view key) const;
  StatusOr<double> get_double(std::string_view key) const;
  StatusOr<bool> get_bool(std::string_view key) const;

  std::string get_string_or(std::string_view key, std::string fallback) const;
  std::int64_t get_int_or(std::string_view key, std::int64_t fallback) const;
  double get_double_or(std::string_view key, double fallback) const;
  bool get_bool_or(std::string_view key, bool fallback) const;

  /// Comma-separated list of doubles, e.g. "0.5,1.0,2.0".
  StatusOr<std::vector<double>> get_double_list(std::string_view key) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// All keys with the given section prefix ("section."), prefix stripped.
  std::vector<std::string> keys_in_section(std::string_view section) const;

 private:
  std::map<std::string, std::string> entries_;
  std::vector<std::string> positional_;
};

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

}  // namespace insitu::pal
