#pragma once

// BufferPool: size-bucketed recycling of byte buffers for the hot loop.
//
// The paper's per-timestep overhead studies (Figs 3-7) measure what the
// infrastructure adds to every simulation step. Allocation churn is pure
// overhead of that kind: every snapshot, serialization, and staging write
// used to materialize a fresh std::vector<std::byte> per step and free it
// again milliseconds later. The pool parks those buffers on release and
// hands them back on the next acquire, making the steady-state step
// allocation-free.
//
// Design:
//  * Buckets are powers of two. acquire(n) rounds n up to the next bucket
//    and returns an empty (size 0) vector whose capacity is at least n,
//    reusing the smallest adequate parked buffer (the request's bucket or
//    any above it). release() files a buffer under the largest bucket its
//    capacity fills, so any pooled buffer satisfies its parked bucket.
//  * Parked bytes are accounted in an internal MemoryTracker (not the
//    rank trackers: buffers in the free list belong to no rank, and a
//    buffer may be released on a different thread than re-acquires it).
//  * Per-bucket depth is capped; overflow buffers are freed and counted
//    as evictions.
//  * All operations are mutex-protected and safe from any thread; the
//    async execution engine releases snapshot arrays on worker threads
//    while rank threads acquire the next step's arrays.
//
// Stats are exported per run as `pool.*` metrics by comm::Runtime (pal
// cannot depend on obs); see docs/PERFORMANCE.md.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "pal/memory_tracker.hpp"

namespace insitu::pal {

/// Monotonic counters. Snapshot with BufferPool::stats(); per-run deltas
/// via BufferPool::stats_since().
struct BufferPoolStats {
  std::uint64_t hits = 0;        ///< acquires served from the free list
  std::uint64_t misses = 0;      ///< acquires that allocated fresh memory
  std::uint64_t evictions = 0;   ///< releases dropped (bucket full / oversize)
  std::uint64_t releases = 0;    ///< total release() calls with capacity
  std::uint64_t bytes_reused = 0;     ///< requested bytes served by hits
  std::uint64_t bytes_allocated = 0;  ///< bucket bytes newly allocated by misses

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

struct BufferPoolOptions {
  /// Smallest bucket; requests below round up to it.
  std::size_t min_bucket_bytes = 64;
  /// Requests above this bypass the pool entirely (always miss, never park).
  std::size_t max_pooled_bytes = std::size_t{256} << 20;
  /// Free-list depth per bucket; further releases evict.
  std::size_t max_buffers_per_bucket = 64;
};

class BufferPool {
 public:
  BufferPool() = default;
  explicit BufferPool(const BufferPoolOptions& options) : options_(options) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty vector with capacity >= bytes (a size-0 buffer: fill
  /// it with resize/insert). Served from the free list when possible.
  std::vector<std::byte> acquire(std::size_t bytes);

  /// Parks the buffer's storage for reuse (or frees it when the bucket is
  /// full, the buffer is oversize, or the pool is disabled).
  void release(std::vector<std::byte>&& buffer);

  /// Disabled: acquire always allocates, release always frees. Used by the
  /// unpooled ablation arm and A/B tests.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Frees every parked buffer (keeps stats). Benches call this between
  /// arms so one configuration cannot warm another's free list.
  void clear();

  /// Zeroes all counters and the parked high-water mark.
  void reset_stats();

  BufferPoolStats stats() const;
  BufferPoolStats stats_since(const BufferPoolStats& start) const;

  std::size_t free_buffers() const;
  std::size_t free_bytes() const { return parked_.current_bytes(); }
  std::size_t free_bytes_peak() const { return parked_.high_water_bytes(); }

  const BufferPoolOptions& options() const { return options_; }

 private:
  static constexpr int kNumBuckets = 48;  // 2^47 ≈ 128 TiB: plenty

  int bucket_for_request(std::size_t bytes) const;   // ceil  pow2 index
  int bucket_for_capacity(std::size_t bytes) const;  // floor pow2 index

  BufferPoolOptions options_;
  std::atomic<bool> enabled_{true};

  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> buckets_[kNumBuckets];
  std::size_t free_buffers_ = 0;
  BufferPoolStats stats_;
  MemoryTracker parked_;  // bytes currently parked + high-water mark
};

/// The pool the data model and serialization paths allocate through: the
/// calling thread's adopted pool (a tenant partition installed by the
/// multi-tenant service via ScopedBufferPool / the SPMD runtime's fiber
/// hooks), or the process-wide default pool. The default pool is leaked
/// on purpose: DataArray destructors may run during static teardown and
/// must still find a live pool.
BufferPool& buffer_pool();

/// The process-wide default pool, ignoring any adoption. Benches and the
/// runtime's pool metrics use this when no tenant partition is involved.
BufferPool& default_buffer_pool();

/// Swap the calling thread's adopted pool, returning the previous one
/// (null when none was adopted; null installs the process default). The
/// M:N scheduler migrates a rank's partition with its continuation via
/// this, exactly like exchange_adopted_memory_tracker.
BufferPool* exchange_adopted_buffer_pool(BufferPool* pool);

/// RAII redirection of the calling thread's pooled allocations to a
/// tenant's partition. A null pool is a no-op install (keeps whatever is
/// adopted), so call sites can pass through an optional partition.
class ScopedBufferPool {
 public:
  explicit ScopedBufferPool(BufferPool* pool)
      : installed_(pool != nullptr),
        saved_(installed_ ? exchange_adopted_buffer_pool(pool) : nullptr) {}
  ~ScopedBufferPool() {
    if (installed_) exchange_adopted_buffer_pool(saved_);
  }

  ScopedBufferPool(const ScopedBufferPool&) = delete;
  ScopedBufferPool& operator=(const ScopedBufferPool&) = delete;

 private:
  bool installed_;
  BufferPool* saved_;
};

/// RAII lease of a pooled buffer: acquires lazily on first access and
/// releases back to the pool on destruction. Writers hold one per stream
/// so the steady-state step reuses one buffer with zero pool round-trips.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  explicit PooledBuffer(std::size_t capacity_hint)
      : bytes_(buffer_pool().acquire(capacity_hint)), acquired_(true) {}
  ~PooledBuffer() { reset(); }

  PooledBuffer(PooledBuffer&& other) noexcept
      : bytes_(std::move(other.bytes_)), acquired_(other.acquired_) {
    other.acquired_ = false;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      bytes_ = std::move(other.bytes_);
      acquired_ = other.acquired_;
      other.acquired_ = false;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  /// The underlying buffer; acquired from the pool on first use.
  std::vector<std::byte>& bytes() {
    if (!acquired_) {
      bytes_ = buffer_pool().acquire(0);
      acquired_ = true;
    }
    return bytes_;
  }

  /// Returns the storage to the pool now.
  void reset() {
    if (acquired_) {
      buffer_pool().release(std::move(bytes_));
      bytes_ = {};
      acquired_ = false;
    }
  }

 private:
  std::vector<std::byte> bytes_;
  bool acquired_ = false;
};

}  // namespace insitu::pal
