#pragma once

// Minimal thread-safe leveled logger. Rank-aware: SPMD code installs a
// rank label so interleaved output stays attributable.

#include <sstream>
#include <string>
#include <string_view>

namespace insitu::pal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kWarn so
/// tests and benches stay quiet unless something is wrong.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Set a thread-local label (e.g. "rank 3") prepended to every message
/// emitted from this thread.
void set_thread_log_label(std::string label);

/// Emit one message; thread safe (single write under a mutex).
void log_message(LogLevel level, std::string_view msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace insitu::pal

#define INSITU_LOG(level)                                      \
  if (static_cast<int>(level) <                                \
      static_cast<int>(::insitu::pal::log_level())) {          \
  } else                                                       \
    ::insitu::pal::detail::LogLine(level)

#define INSITU_DEBUG INSITU_LOG(::insitu::pal::LogLevel::kDebug)
#define INSITU_INFO INSITU_LOG(::insitu::pal::LogLevel::kInfo)
#define INSITU_WARN INSITU_LOG(::insitu::pal::LogLevel::kWarn)
#define INSITU_ERROR INSITU_LOG(::insitu::pal::LogLevel::kError)
