#include "pal/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace insitu::pal {

void TablePrinter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::add_note(std::string note) {
  notes_.push_back(std::move(note));
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string TablePrinter::bytes(double byte_count) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (byte_count >= 1024.0 && unit < 4) {
    byte_count /= 1024.0;
    ++unit;
  }
  return num(byte_count, 2) + " " + units[unit];
}

std::string TablePrinter::to_string() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < ncols) {
        out << std::string(width[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += width[c] + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  for (const auto& note : notes_) out << "  * " << note << '\n';
  return out.str();
}

void TablePrinter::print() const {
  const std::string text = to_string();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

}  // namespace insitu::pal
