# Empty dependencies file for mixing_layer.
# This may be replaced when dependencies are built.
