
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mixing_layer.cpp" "examples/CMakeFiles/mixing_layer.dir/mixing_layer.cpp.o" "gcc" "examples/CMakeFiles/mixing_layer.dir/mixing_layer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/CMakeFiles/insitu_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/miniapp/CMakeFiles/insitu_miniapp.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/insitu_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/insitu_io.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/insitu_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/insitu_render.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/insitu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/insitu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/insitu_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/insitu_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/insitu_pal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
