file(REMOVE_RECURSE
  "CMakeFiles/mixing_layer.dir/mixing_layer.cpp.o"
  "CMakeFiles/mixing_layer.dir/mixing_layer.cpp.o.d"
  "mixing_layer"
  "mixing_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixing_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
