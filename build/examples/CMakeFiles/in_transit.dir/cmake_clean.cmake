file(REMOVE_RECURSE
  "CMakeFiles/in_transit.dir/in_transit.cpp.o"
  "CMakeFiles/in_transit.dir/in_transit.cpp.o.d"
  "in_transit"
  "in_transit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/in_transit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
