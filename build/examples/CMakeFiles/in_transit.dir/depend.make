# Empty dependencies file for in_transit.
# This may be replaced when dependencies are built.
