file(REMOVE_RECURSE
  "CMakeFiles/oscillator_insitu.dir/oscillator_insitu.cpp.o"
  "CMakeFiles/oscillator_insitu.dir/oscillator_insitu.cpp.o.d"
  "oscillator_insitu"
  "oscillator_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oscillator_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
