# Empty compiler generated dependencies file for oscillator_insitu.
# This may be replaced when dependencies are built.
