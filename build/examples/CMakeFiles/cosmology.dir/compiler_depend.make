# Empty compiler generated dependencies file for cosmology.
# This may be replaced when dependencies are built.
