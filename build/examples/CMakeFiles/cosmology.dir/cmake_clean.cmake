file(REMOVE_RECURSE
  "CMakeFiles/cosmology.dir/cosmology.cpp.o"
  "CMakeFiles/cosmology.dir/cosmology.cpp.o.d"
  "cosmology"
  "cosmology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
