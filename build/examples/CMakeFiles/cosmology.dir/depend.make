# Empty dependencies file for cosmology.
# This may be replaced when dependencies are built.
