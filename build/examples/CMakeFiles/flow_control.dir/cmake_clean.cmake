file(REMOVE_RECURSE
  "CMakeFiles/flow_control.dir/flow_control.cpp.o"
  "CMakeFiles/flow_control.dir/flow_control.cpp.o.d"
  "flow_control"
  "flow_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
