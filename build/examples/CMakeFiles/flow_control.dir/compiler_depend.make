# Empty compiler generated dependencies file for flow_control.
# This may be replaced when dependencies are built.
