# Empty compiler generated dependencies file for fig12_insitu_vs_posthoc.
# This may be replaced when dependencies are built.
