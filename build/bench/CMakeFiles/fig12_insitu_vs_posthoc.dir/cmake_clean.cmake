file(REMOVE_RECURSE
  "CMakeFiles/fig12_insitu_vs_posthoc.dir/fig12_insitu_vs_posthoc.cpp.o"
  "CMakeFiles/fig12_insitu_vs_posthoc.dir/fig12_insitu_vs_posthoc.cpp.o.d"
  "fig12_insitu_vs_posthoc"
  "fig12_insitu_vs_posthoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_insitu_vs_posthoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
