file(REMOVE_RECURSE
  "CMakeFiles/fig06_pertimestep_costs.dir/fig06_pertimestep_costs.cpp.o"
  "CMakeFiles/fig06_pertimestep_costs.dir/fig06_pertimestep_costs.cpp.o.d"
  "fig06_pertimestep_costs"
  "fig06_pertimestep_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pertimestep_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
