# Empty dependencies file for fig06_pertimestep_costs.
# This may be replaced when dependencies are built.
