# Empty dependencies file for fig03_04_sensei_overhead.
# This may be replaced when dependencies are built.
