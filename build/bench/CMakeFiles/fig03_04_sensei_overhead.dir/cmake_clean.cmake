file(REMOVE_RECURSE
  "CMakeFiles/fig03_04_sensei_overhead.dir/fig03_04_sensei_overhead.cpp.o"
  "CMakeFiles/fig03_04_sensei_overhead.dir/fig03_04_sensei_overhead.cpp.o.d"
  "fig03_04_sensei_overhead"
  "fig03_04_sensei_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_04_sensei_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
