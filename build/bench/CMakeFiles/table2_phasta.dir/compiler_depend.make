# Empty compiler generated dependencies file for table2_phasta.
# This may be replaced when dependencies are built.
