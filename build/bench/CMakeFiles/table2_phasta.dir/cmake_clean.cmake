file(REMOVE_RECURSE
  "CMakeFiles/table2_phasta.dir/table2_phasta.cpp.o"
  "CMakeFiles/table2_phasta.dir/table2_phasta.cpp.o.d"
  "table2_phasta"
  "table2_phasta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_phasta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
