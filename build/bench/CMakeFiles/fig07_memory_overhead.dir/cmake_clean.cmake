file(REMOVE_RECURSE
  "CMakeFiles/fig07_memory_overhead.dir/fig07_memory_overhead.cpp.o"
  "CMakeFiles/fig07_memory_overhead.dir/fig07_memory_overhead.cpp.o.d"
  "fig07_memory_overhead"
  "fig07_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
