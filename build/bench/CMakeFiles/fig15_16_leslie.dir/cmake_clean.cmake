file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_leslie.dir/fig15_16_leslie.cpp.o"
  "CMakeFiles/fig15_16_leslie.dir/fig15_16_leslie.cpp.o.d"
  "fig15_16_leslie"
  "fig15_16_leslie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_leslie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
