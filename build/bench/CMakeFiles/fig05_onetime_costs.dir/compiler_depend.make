# Empty compiler generated dependencies file for fig05_onetime_costs.
# This may be replaced when dependencies are built.
