file(REMOVE_RECURSE
  "CMakeFiles/fig05_onetime_costs.dir/fig05_onetime_costs.cpp.o"
  "CMakeFiles/fig05_onetime_costs.dir/fig05_onetime_costs.cpp.o.d"
  "fig05_onetime_costs"
  "fig05_onetime_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_onetime_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
