file(REMOVE_RECURSE
  "CMakeFiles/table1_fig10_write_costs.dir/table1_fig10_write_costs.cpp.o"
  "CMakeFiles/table1_fig10_write_costs.dir/table1_fig10_write_costs.cpp.o.d"
  "table1_fig10_write_costs"
  "table1_fig10_write_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fig10_write_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
