# Empty compiler generated dependencies file for table1_fig10_write_costs.
# This may be replaced when dependencies are built.
