file(REMOVE_RECURSE
  "CMakeFiles/fig17_nyx.dir/fig17_nyx.cpp.o"
  "CMakeFiles/fig17_nyx.dir/fig17_nyx.cpp.o.d"
  "fig17_nyx"
  "fig17_nyx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_nyx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
