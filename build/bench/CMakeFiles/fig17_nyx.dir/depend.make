# Empty dependencies file for fig17_nyx.
# This may be replaced when dependencies are built.
