file(REMOVE_RECURSE
  "libinsitu_bench_common.a"
)
