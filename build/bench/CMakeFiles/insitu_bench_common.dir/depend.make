# Empty dependencies file for insitu_bench_common.
# This may be replaced when dependencies are built.
