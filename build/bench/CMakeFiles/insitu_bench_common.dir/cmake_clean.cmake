file(REMOVE_RECURSE
  "CMakeFiles/insitu_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/insitu_bench_common.dir/bench_common.cpp.o.d"
  "libinsitu_bench_common.a"
  "libinsitu_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
