# Empty compiler generated dependencies file for ablation_zerocopy.
# This may be replaced when dependencies are built.
