file(REMOVE_RECURSE
  "CMakeFiles/ablation_zerocopy.dir/ablation_zerocopy.cpp.o"
  "CMakeFiles/ablation_zerocopy.dir/ablation_zerocopy.cpp.o.d"
  "ablation_zerocopy"
  "ablation_zerocopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zerocopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
