file(REMOVE_RECURSE
  "CMakeFiles/fig08_09_adios_flexpath.dir/fig08_09_adios_flexpath.cpp.o"
  "CMakeFiles/fig08_09_adios_flexpath.dir/fig08_09_adios_flexpath.cpp.o.d"
  "fig08_09_adios_flexpath"
  "fig08_09_adios_flexpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_09_adios_flexpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
