# Empty compiler generated dependencies file for fig08_09_adios_flexpath.
# This may be replaced when dependencies are built.
