file(REMOVE_RECURSE
  "CMakeFiles/fig11_posthoc_reads.dir/fig11_posthoc_reads.cpp.o"
  "CMakeFiles/fig11_posthoc_reads.dir/fig11_posthoc_reads.cpp.o.d"
  "fig11_posthoc_reads"
  "fig11_posthoc_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_posthoc_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
