# Empty compiler generated dependencies file for fig11_posthoc_reads.
# This may be replaced when dependencies are built.
