# Empty compiler generated dependencies file for ablation_extracts.
# This may be replaced when dependencies are built.
