file(REMOVE_RECURSE
  "CMakeFiles/ablation_extracts.dir/ablation_extracts.cpp.o"
  "CMakeFiles/ablation_extracts.dir/ablation_extracts.cpp.o.d"
  "ablation_extracts"
  "ablation_extracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
