file(REMOVE_RECURSE
  "CMakeFiles/ablation_compositing.dir/ablation_compositing.cpp.o"
  "CMakeFiles/ablation_compositing.dir/ablation_compositing.cpp.o.d"
  "ablation_compositing"
  "ablation_compositing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compositing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
