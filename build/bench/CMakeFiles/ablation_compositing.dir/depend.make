# Empty dependencies file for ablation_compositing.
# This may be replaced when dependencies are built.
