file(REMOVE_RECURSE
  "libinsitu_comm.a"
)
