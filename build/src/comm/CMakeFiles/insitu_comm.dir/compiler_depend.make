# Empty compiler generated dependencies file for insitu_comm.
# This may be replaced when dependencies are built.
