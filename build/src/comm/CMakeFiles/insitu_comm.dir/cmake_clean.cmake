file(REMOVE_RECURSE
  "CMakeFiles/insitu_comm.dir/communicator.cpp.o"
  "CMakeFiles/insitu_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/insitu_comm.dir/machine_model.cpp.o"
  "CMakeFiles/insitu_comm.dir/machine_model.cpp.o.d"
  "CMakeFiles/insitu_comm.dir/runtime.cpp.o"
  "CMakeFiles/insitu_comm.dir/runtime.cpp.o.d"
  "libinsitu_comm.a"
  "libinsitu_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
