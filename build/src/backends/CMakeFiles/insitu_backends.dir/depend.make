# Empty dependencies file for insitu_backends.
# This may be replaced when dependencies are built.
