file(REMOVE_RECURSE
  "CMakeFiles/insitu_backends.dir/adios_bp.cpp.o"
  "CMakeFiles/insitu_backends.dir/adios_bp.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/catalyst.cpp.o"
  "CMakeFiles/insitu_backends.dir/catalyst.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/cinema.cpp.o"
  "CMakeFiles/insitu_backends.dir/cinema.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/configurable.cpp.o"
  "CMakeFiles/insitu_backends.dir/configurable.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/extracts.cpp.o"
  "CMakeFiles/insitu_backends.dir/extracts.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/flexpath.cpp.o"
  "CMakeFiles/insitu_backends.dir/flexpath.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/glean.cpp.o"
  "CMakeFiles/insitu_backends.dir/glean.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/libsim.cpp.o"
  "CMakeFiles/insitu_backends.dir/libsim.cpp.o.d"
  "CMakeFiles/insitu_backends.dir/vtk_series.cpp.o"
  "CMakeFiles/insitu_backends.dir/vtk_series.cpp.o.d"
  "libinsitu_backends.a"
  "libinsitu_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
