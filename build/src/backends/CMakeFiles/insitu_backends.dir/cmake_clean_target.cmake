file(REMOVE_RECURSE
  "libinsitu_backends.a"
)
