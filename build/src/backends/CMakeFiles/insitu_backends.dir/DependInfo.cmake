
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/adios_bp.cpp" "src/backends/CMakeFiles/insitu_backends.dir/adios_bp.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/adios_bp.cpp.o.d"
  "/root/repo/src/backends/catalyst.cpp" "src/backends/CMakeFiles/insitu_backends.dir/catalyst.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/catalyst.cpp.o.d"
  "/root/repo/src/backends/cinema.cpp" "src/backends/CMakeFiles/insitu_backends.dir/cinema.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/cinema.cpp.o.d"
  "/root/repo/src/backends/configurable.cpp" "src/backends/CMakeFiles/insitu_backends.dir/configurable.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/configurable.cpp.o.d"
  "/root/repo/src/backends/extracts.cpp" "src/backends/CMakeFiles/insitu_backends.dir/extracts.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/extracts.cpp.o.d"
  "/root/repo/src/backends/flexpath.cpp" "src/backends/CMakeFiles/insitu_backends.dir/flexpath.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/flexpath.cpp.o.d"
  "/root/repo/src/backends/glean.cpp" "src/backends/CMakeFiles/insitu_backends.dir/glean.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/glean.cpp.o.d"
  "/root/repo/src/backends/libsim.cpp" "src/backends/CMakeFiles/insitu_backends.dir/libsim.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/libsim.cpp.o.d"
  "/root/repo/src/backends/vtk_series.cpp" "src/backends/CMakeFiles/insitu_backends.dir/vtk_series.cpp.o" "gcc" "src/backends/CMakeFiles/insitu_backends.dir/vtk_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/render/CMakeFiles/insitu_render.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/insitu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/insitu_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/insitu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/insitu_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/insitu_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/insitu_pal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
