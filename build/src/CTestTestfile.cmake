# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("pal")
subdirs("comm")
subdirs("data")
subdirs("analysis")
subdirs("render")
subdirs("core")
subdirs("io")
subdirs("backends")
subdirs("miniapp")
subdirs("proxy")
subdirs("perfmodel")
