# Empty compiler generated dependencies file for insitu_pal.
# This may be replaced when dependencies are built.
