file(REMOVE_RECURSE
  "libinsitu_pal.a"
)
