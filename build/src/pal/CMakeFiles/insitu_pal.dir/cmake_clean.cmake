file(REMOVE_RECURSE
  "CMakeFiles/insitu_pal.dir/config.cpp.o"
  "CMakeFiles/insitu_pal.dir/config.cpp.o.d"
  "CMakeFiles/insitu_pal.dir/log.cpp.o"
  "CMakeFiles/insitu_pal.dir/log.cpp.o.d"
  "CMakeFiles/insitu_pal.dir/memory_tracker.cpp.o"
  "CMakeFiles/insitu_pal.dir/memory_tracker.cpp.o.d"
  "CMakeFiles/insitu_pal.dir/rng.cpp.o"
  "CMakeFiles/insitu_pal.dir/rng.cpp.o.d"
  "CMakeFiles/insitu_pal.dir/table.cpp.o"
  "CMakeFiles/insitu_pal.dir/table.cpp.o.d"
  "libinsitu_pal.a"
  "libinsitu_pal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_pal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
