
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pal/config.cpp" "src/pal/CMakeFiles/insitu_pal.dir/config.cpp.o" "gcc" "src/pal/CMakeFiles/insitu_pal.dir/config.cpp.o.d"
  "/root/repo/src/pal/log.cpp" "src/pal/CMakeFiles/insitu_pal.dir/log.cpp.o" "gcc" "src/pal/CMakeFiles/insitu_pal.dir/log.cpp.o.d"
  "/root/repo/src/pal/memory_tracker.cpp" "src/pal/CMakeFiles/insitu_pal.dir/memory_tracker.cpp.o" "gcc" "src/pal/CMakeFiles/insitu_pal.dir/memory_tracker.cpp.o.d"
  "/root/repo/src/pal/rng.cpp" "src/pal/CMakeFiles/insitu_pal.dir/rng.cpp.o" "gcc" "src/pal/CMakeFiles/insitu_pal.dir/rng.cpp.o.d"
  "/root/repo/src/pal/table.cpp" "src/pal/CMakeFiles/insitu_pal.dir/table.cpp.o" "gcc" "src/pal/CMakeFiles/insitu_pal.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
