file(REMOVE_RECURSE
  "libinsitu_analysis.a"
)
