# Empty compiler generated dependencies file for insitu_analysis.
# This may be replaced when dependencies are built.
