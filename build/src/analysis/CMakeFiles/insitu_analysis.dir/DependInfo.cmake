
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/autocorrelation.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/autocorrelation.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/autocorrelation.cpp.o.d"
  "/root/repo/src/analysis/bitmap_index.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/bitmap_index.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/bitmap_index.cpp.o.d"
  "/root/repo/src/analysis/contour.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/contour.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/contour.cpp.o.d"
  "/root/repo/src/analysis/derived.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/derived.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/derived.cpp.o.d"
  "/root/repo/src/analysis/feature_tracking.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/feature_tracking.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/feature_tracking.cpp.o.d"
  "/root/repo/src/analysis/geometry.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/geometry.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/geometry.cpp.o.d"
  "/root/repo/src/analysis/histogram.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/histogram.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/histogram.cpp.o.d"
  "/root/repo/src/analysis/statistics.cpp" "src/analysis/CMakeFiles/insitu_analysis.dir/statistics.cpp.o" "gcc" "src/analysis/CMakeFiles/insitu_analysis.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/insitu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/insitu_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/insitu_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/insitu_pal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
