file(REMOVE_RECURSE
  "CMakeFiles/insitu_analysis.dir/autocorrelation.cpp.o"
  "CMakeFiles/insitu_analysis.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/insitu_analysis.dir/bitmap_index.cpp.o"
  "CMakeFiles/insitu_analysis.dir/bitmap_index.cpp.o.d"
  "CMakeFiles/insitu_analysis.dir/contour.cpp.o"
  "CMakeFiles/insitu_analysis.dir/contour.cpp.o.d"
  "CMakeFiles/insitu_analysis.dir/derived.cpp.o"
  "CMakeFiles/insitu_analysis.dir/derived.cpp.o.d"
  "CMakeFiles/insitu_analysis.dir/feature_tracking.cpp.o"
  "CMakeFiles/insitu_analysis.dir/feature_tracking.cpp.o.d"
  "CMakeFiles/insitu_analysis.dir/geometry.cpp.o"
  "CMakeFiles/insitu_analysis.dir/geometry.cpp.o.d"
  "CMakeFiles/insitu_analysis.dir/histogram.cpp.o"
  "CMakeFiles/insitu_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/insitu_analysis.dir/statistics.cpp.o"
  "CMakeFiles/insitu_analysis.dir/statistics.cpp.o.d"
  "libinsitu_analysis.a"
  "libinsitu_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
