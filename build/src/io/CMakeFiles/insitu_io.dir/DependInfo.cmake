
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/block_io.cpp" "src/io/CMakeFiles/insitu_io.dir/block_io.cpp.o" "gcc" "src/io/CMakeFiles/insitu_io.dir/block_io.cpp.o.d"
  "/root/repo/src/io/lustre_model.cpp" "src/io/CMakeFiles/insitu_io.dir/lustre_model.cpp.o" "gcc" "src/io/CMakeFiles/insitu_io.dir/lustre_model.cpp.o.d"
  "/root/repo/src/io/vtk_xml.cpp" "src/io/CMakeFiles/insitu_io.dir/vtk_xml.cpp.o" "gcc" "src/io/CMakeFiles/insitu_io.dir/vtk_xml.cpp.o.d"
  "/root/repo/src/io/writers.cpp" "src/io/CMakeFiles/insitu_io.dir/writers.cpp.o" "gcc" "src/io/CMakeFiles/insitu_io.dir/writers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/insitu_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/insitu_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/insitu_pal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
