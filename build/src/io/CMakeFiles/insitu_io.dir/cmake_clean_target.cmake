file(REMOVE_RECURSE
  "libinsitu_io.a"
)
