file(REMOVE_RECURSE
  "CMakeFiles/insitu_io.dir/block_io.cpp.o"
  "CMakeFiles/insitu_io.dir/block_io.cpp.o.d"
  "CMakeFiles/insitu_io.dir/lustre_model.cpp.o"
  "CMakeFiles/insitu_io.dir/lustre_model.cpp.o.d"
  "CMakeFiles/insitu_io.dir/vtk_xml.cpp.o"
  "CMakeFiles/insitu_io.dir/vtk_xml.cpp.o.d"
  "CMakeFiles/insitu_io.dir/writers.cpp.o"
  "CMakeFiles/insitu_io.dir/writers.cpp.o.d"
  "libinsitu_io.a"
  "libinsitu_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
