# Empty dependencies file for insitu_io.
# This may be replaced when dependencies are built.
