file(REMOVE_RECURSE
  "libinsitu_proxy.a"
)
