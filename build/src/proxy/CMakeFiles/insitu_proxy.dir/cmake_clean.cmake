file(REMOVE_RECURSE
  "CMakeFiles/insitu_proxy.dir/leslie.cpp.o"
  "CMakeFiles/insitu_proxy.dir/leslie.cpp.o.d"
  "CMakeFiles/insitu_proxy.dir/nyx.cpp.o"
  "CMakeFiles/insitu_proxy.dir/nyx.cpp.o.d"
  "CMakeFiles/insitu_proxy.dir/phasta.cpp.o"
  "CMakeFiles/insitu_proxy.dir/phasta.cpp.o.d"
  "libinsitu_proxy.a"
  "libinsitu_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
