# Empty compiler generated dependencies file for insitu_proxy.
# This may be replaced when dependencies are built.
