file(REMOVE_RECURSE
  "CMakeFiles/insitu_core.dir/bridge.cpp.o"
  "CMakeFiles/insitu_core.dir/bridge.cpp.o.d"
  "CMakeFiles/insitu_core.dir/data_adaptor.cpp.o"
  "CMakeFiles/insitu_core.dir/data_adaptor.cpp.o.d"
  "libinsitu_core.a"
  "libinsitu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
