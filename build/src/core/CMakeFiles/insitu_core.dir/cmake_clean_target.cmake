file(REMOVE_RECURSE
  "libinsitu_core.a"
)
