file(REMOVE_RECURSE
  "CMakeFiles/insitu_render.dir/colormap.cpp.o"
  "CMakeFiles/insitu_render.dir/colormap.cpp.o.d"
  "CMakeFiles/insitu_render.dir/compositor.cpp.o"
  "CMakeFiles/insitu_render.dir/compositor.cpp.o.d"
  "CMakeFiles/insitu_render.dir/png.cpp.o"
  "CMakeFiles/insitu_render.dir/png.cpp.o.d"
  "CMakeFiles/insitu_render.dir/rasterizer.cpp.o"
  "CMakeFiles/insitu_render.dir/rasterizer.cpp.o.d"
  "libinsitu_render.a"
  "libinsitu_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
