# Empty dependencies file for insitu_render.
# This may be replaced when dependencies are built.
