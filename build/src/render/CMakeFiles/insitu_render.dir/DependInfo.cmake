
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/colormap.cpp" "src/render/CMakeFiles/insitu_render.dir/colormap.cpp.o" "gcc" "src/render/CMakeFiles/insitu_render.dir/colormap.cpp.o.d"
  "/root/repo/src/render/compositor.cpp" "src/render/CMakeFiles/insitu_render.dir/compositor.cpp.o" "gcc" "src/render/CMakeFiles/insitu_render.dir/compositor.cpp.o.d"
  "/root/repo/src/render/png.cpp" "src/render/CMakeFiles/insitu_render.dir/png.cpp.o" "gcc" "src/render/CMakeFiles/insitu_render.dir/png.cpp.o.d"
  "/root/repo/src/render/rasterizer.cpp" "src/render/CMakeFiles/insitu_render.dir/rasterizer.cpp.o" "gcc" "src/render/CMakeFiles/insitu_render.dir/rasterizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/insitu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/insitu_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/insitu_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/insitu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/insitu_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
