file(REMOVE_RECURSE
  "libinsitu_render.a"
)
