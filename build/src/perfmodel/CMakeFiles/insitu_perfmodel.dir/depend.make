# Empty dependencies file for insitu_perfmodel.
# This may be replaced when dependencies are built.
