file(REMOVE_RECURSE
  "libinsitu_perfmodel.a"
)
