file(REMOVE_RECURSE
  "CMakeFiles/insitu_perfmodel.dir/paper_model.cpp.o"
  "CMakeFiles/insitu_perfmodel.dir/paper_model.cpp.o.d"
  "libinsitu_perfmodel.a"
  "libinsitu_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
