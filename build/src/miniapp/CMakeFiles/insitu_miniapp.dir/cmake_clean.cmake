file(REMOVE_RECURSE
  "CMakeFiles/insitu_miniapp.dir/adaptor.cpp.o"
  "CMakeFiles/insitu_miniapp.dir/adaptor.cpp.o.d"
  "CMakeFiles/insitu_miniapp.dir/oscillator.cpp.o"
  "CMakeFiles/insitu_miniapp.dir/oscillator.cpp.o.d"
  "libinsitu_miniapp.a"
  "libinsitu_miniapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_miniapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
