file(REMOVE_RECURSE
  "libinsitu_miniapp.a"
)
