# Empty dependencies file for insitu_miniapp.
# This may be replaced when dependencies are built.
