
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/data_array.cpp" "src/data/CMakeFiles/insitu_data.dir/data_array.cpp.o" "gcc" "src/data/CMakeFiles/insitu_data.dir/data_array.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/insitu_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/insitu_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/image_data.cpp" "src/data/CMakeFiles/insitu_data.dir/image_data.cpp.o" "gcc" "src/data/CMakeFiles/insitu_data.dir/image_data.cpp.o.d"
  "/root/repo/src/data/unstructured_grid.cpp" "src/data/CMakeFiles/insitu_data.dir/unstructured_grid.cpp.o" "gcc" "src/data/CMakeFiles/insitu_data.dir/unstructured_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pal/CMakeFiles/insitu_pal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
