file(REMOVE_RECURSE
  "CMakeFiles/insitu_data.dir/data_array.cpp.o"
  "CMakeFiles/insitu_data.dir/data_array.cpp.o.d"
  "CMakeFiles/insitu_data.dir/dataset.cpp.o"
  "CMakeFiles/insitu_data.dir/dataset.cpp.o.d"
  "CMakeFiles/insitu_data.dir/image_data.cpp.o"
  "CMakeFiles/insitu_data.dir/image_data.cpp.o.d"
  "CMakeFiles/insitu_data.dir/unstructured_grid.cpp.o"
  "CMakeFiles/insitu_data.dir/unstructured_grid.cpp.o.d"
  "libinsitu_data.a"
  "libinsitu_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
