# Empty dependencies file for insitu_data.
# This may be replaced when dependencies are built.
