# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pal_status_test[1]_include.cmake")
include("/root/repo/build/tests/pal_config_test[1]_include.cmake")
include("/root/repo/build/tests/pal_util_test[1]_include.cmake")
include("/root/repo/build/tests/comm_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/comm_ptp_test[1]_include.cmake")
include("/root/repo/build/tests/comm_model_test[1]_include.cmake")
include("/root/repo/build/tests/data_array_test[1]_include.cmake")
include("/root/repo/build/tests/data_grids_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_histogram_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_autocorrelation_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_contour_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/miniapp_test[1]_include.cmake")
include("/root/repo/build/tests/backends_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/derived_fields_test[1]_include.cmake")
include("/root/repo/build/tests/property_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/extracts_cinema_test[1]_include.cmake")
include("/root/repo/build/tests/bitmap_index_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/feature_tracking_test[1]_include.cmake")
include("/root/repo/build/tests/vtk_xml_test[1]_include.cmake")
include("/root/repo/build/tests/vtk_series_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
