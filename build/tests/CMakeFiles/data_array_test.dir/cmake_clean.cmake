file(REMOVE_RECURSE
  "CMakeFiles/data_array_test.dir/data_array_test.cpp.o"
  "CMakeFiles/data_array_test.dir/data_array_test.cpp.o.d"
  "data_array_test"
  "data_array_test.pdb"
  "data_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
