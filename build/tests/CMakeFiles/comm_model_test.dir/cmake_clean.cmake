file(REMOVE_RECURSE
  "CMakeFiles/comm_model_test.dir/comm_model_test.cpp.o"
  "CMakeFiles/comm_model_test.dir/comm_model_test.cpp.o.d"
  "comm_model_test"
  "comm_model_test.pdb"
  "comm_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
