file(REMOVE_RECURSE
  "CMakeFiles/extracts_cinema_test.dir/extracts_cinema_test.cpp.o"
  "CMakeFiles/extracts_cinema_test.dir/extracts_cinema_test.cpp.o.d"
  "extracts_cinema_test"
  "extracts_cinema_test.pdb"
  "extracts_cinema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extracts_cinema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
