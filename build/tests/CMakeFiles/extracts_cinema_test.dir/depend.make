# Empty dependencies file for extracts_cinema_test.
# This may be replaced when dependencies are built.
