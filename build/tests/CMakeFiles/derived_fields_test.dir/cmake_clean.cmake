file(REMOVE_RECURSE
  "CMakeFiles/derived_fields_test.dir/derived_fields_test.cpp.o"
  "CMakeFiles/derived_fields_test.dir/derived_fields_test.cpp.o.d"
  "derived_fields_test"
  "derived_fields_test.pdb"
  "derived_fields_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_fields_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
