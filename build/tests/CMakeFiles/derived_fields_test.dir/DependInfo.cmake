
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/derived_fields_test.cpp" "tests/CMakeFiles/derived_fields_test.dir/derived_fields_test.cpp.o" "gcc" "tests/CMakeFiles/derived_fields_test.dir/derived_fields_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/insitu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/insitu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/insitu_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/insitu_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/insitu_pal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
