# Empty dependencies file for pal_status_test.
# This may be replaced when dependencies are built.
