file(REMOVE_RECURSE
  "CMakeFiles/pal_status_test.dir/pal_status_test.cpp.o"
  "CMakeFiles/pal_status_test.dir/pal_status_test.cpp.o.d"
  "pal_status_test"
  "pal_status_test.pdb"
  "pal_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pal_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
