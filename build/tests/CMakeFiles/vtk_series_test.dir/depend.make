# Empty dependencies file for vtk_series_test.
# This may be replaced when dependencies are built.
