file(REMOVE_RECURSE
  "CMakeFiles/vtk_series_test.dir/vtk_series_test.cpp.o"
  "CMakeFiles/vtk_series_test.dir/vtk_series_test.cpp.o.d"
  "vtk_series_test"
  "vtk_series_test.pdb"
  "vtk_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtk_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
