# Empty dependencies file for miniapp_test.
# This may be replaced when dependencies are built.
