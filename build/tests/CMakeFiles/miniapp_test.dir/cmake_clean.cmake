file(REMOVE_RECURSE
  "CMakeFiles/miniapp_test.dir/miniapp_test.cpp.o"
  "CMakeFiles/miniapp_test.dir/miniapp_test.cpp.o.d"
  "miniapp_test"
  "miniapp_test.pdb"
  "miniapp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniapp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
