file(REMOVE_RECURSE
  "CMakeFiles/comm_collectives_test.dir/comm_collectives_test.cpp.o"
  "CMakeFiles/comm_collectives_test.dir/comm_collectives_test.cpp.o.d"
  "comm_collectives_test"
  "comm_collectives_test.pdb"
  "comm_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
