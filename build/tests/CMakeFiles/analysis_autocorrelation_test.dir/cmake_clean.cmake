file(REMOVE_RECURSE
  "CMakeFiles/analysis_autocorrelation_test.dir/analysis_autocorrelation_test.cpp.o"
  "CMakeFiles/analysis_autocorrelation_test.dir/analysis_autocorrelation_test.cpp.o.d"
  "analysis_autocorrelation_test"
  "analysis_autocorrelation_test.pdb"
  "analysis_autocorrelation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_autocorrelation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
