# Empty compiler generated dependencies file for analysis_autocorrelation_test.
# This may be replaced when dependencies are built.
