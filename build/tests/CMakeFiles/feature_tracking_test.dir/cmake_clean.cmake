file(REMOVE_RECURSE
  "CMakeFiles/feature_tracking_test.dir/feature_tracking_test.cpp.o"
  "CMakeFiles/feature_tracking_test.dir/feature_tracking_test.cpp.o.d"
  "feature_tracking_test"
  "feature_tracking_test.pdb"
  "feature_tracking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
