# Empty dependencies file for feature_tracking_test.
# This may be replaced when dependencies are built.
