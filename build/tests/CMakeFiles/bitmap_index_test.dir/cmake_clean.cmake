file(REMOVE_RECURSE
  "CMakeFiles/bitmap_index_test.dir/bitmap_index_test.cpp.o"
  "CMakeFiles/bitmap_index_test.dir/bitmap_index_test.cpp.o.d"
  "bitmap_index_test"
  "bitmap_index_test.pdb"
  "bitmap_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
