# Empty compiler generated dependencies file for data_grids_test.
# This may be replaced when dependencies are built.
