file(REMOVE_RECURSE
  "CMakeFiles/data_grids_test.dir/data_grids_test.cpp.o"
  "CMakeFiles/data_grids_test.dir/data_grids_test.cpp.o.d"
  "data_grids_test"
  "data_grids_test.pdb"
  "data_grids_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_grids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
