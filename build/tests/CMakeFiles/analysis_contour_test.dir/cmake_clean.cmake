file(REMOVE_RECURSE
  "CMakeFiles/analysis_contour_test.dir/analysis_contour_test.cpp.o"
  "CMakeFiles/analysis_contour_test.dir/analysis_contour_test.cpp.o.d"
  "analysis_contour_test"
  "analysis_contour_test.pdb"
  "analysis_contour_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_contour_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
