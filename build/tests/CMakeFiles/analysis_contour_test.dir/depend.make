# Empty dependencies file for analysis_contour_test.
# This may be replaced when dependencies are built.
