file(REMOVE_RECURSE
  "CMakeFiles/comm_ptp_test.dir/comm_ptp_test.cpp.o"
  "CMakeFiles/comm_ptp_test.dir/comm_ptp_test.cpp.o.d"
  "comm_ptp_test"
  "comm_ptp_test.pdb"
  "comm_ptp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_ptp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
