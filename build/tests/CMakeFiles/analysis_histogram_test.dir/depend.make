# Empty dependencies file for analysis_histogram_test.
# This may be replaced when dependencies are built.
