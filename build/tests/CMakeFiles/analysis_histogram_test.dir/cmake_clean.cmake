file(REMOVE_RECURSE
  "CMakeFiles/analysis_histogram_test.dir/analysis_histogram_test.cpp.o"
  "CMakeFiles/analysis_histogram_test.dir/analysis_histogram_test.cpp.o.d"
  "analysis_histogram_test"
  "analysis_histogram_test.pdb"
  "analysis_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
