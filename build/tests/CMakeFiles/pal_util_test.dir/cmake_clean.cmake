file(REMOVE_RECURSE
  "CMakeFiles/pal_util_test.dir/pal_util_test.cpp.o"
  "CMakeFiles/pal_util_test.dir/pal_util_test.cpp.o.d"
  "pal_util_test"
  "pal_util_test.pdb"
  "pal_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pal_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
