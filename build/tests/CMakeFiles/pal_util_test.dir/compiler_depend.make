# Empty compiler generated dependencies file for pal_util_test.
# This may be replaced when dependencies are built.
