file(REMOVE_RECURSE
  "CMakeFiles/vtk_xml_test.dir/vtk_xml_test.cpp.o"
  "CMakeFiles/vtk_xml_test.dir/vtk_xml_test.cpp.o.d"
  "vtk_xml_test"
  "vtk_xml_test.pdb"
  "vtk_xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtk_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
