# Empty compiler generated dependencies file for vtk_xml_test.
# This may be replaced when dependencies are built.
