# Empty dependencies file for pal_config_test.
# This may be replaced when dependencies are built.
