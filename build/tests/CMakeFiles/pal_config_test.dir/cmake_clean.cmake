file(REMOVE_RECURSE
  "CMakeFiles/pal_config_test.dir/pal_config_test.cpp.o"
  "CMakeFiles/pal_config_test.dir/pal_config_test.cpp.o.d"
  "pal_config_test"
  "pal_config_test.pdb"
  "pal_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pal_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
