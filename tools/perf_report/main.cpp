// perf_report: offline performance-analysis CLI over the obs exports
// (docs/PERFORMANCE.md).
//
//   perf_report trace.json                  paper-style breakdown report
//   perf_report trace.json --metrics m.csv  ... plus the metrics dump
//   perf_report trace.json --write-baseline bench/baselines/foo.json
//   perf_report trace.json --check bench/baselines/foo.json [--tolerance F]
//   perf_report baseline.json               print a baseline file
//   perf_report current.json --check base.json   (two baseline files)
//   perf_report metrics.csv                 print a metrics dump
//
// Input kind (Chrome trace / baseline / metrics CSV or JSON) is
// auto-detected. --check exits 2 on per-phase virtual-time regressions
// beyond tolerance (default +10%) unless --report-only is given.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/analyze/baseline.hpp"
#include "obs/analyze/import.hpp"
#include "obs/analyze/json.hpp"
#include "obs/analyze/report.hpp"
#include "obs/metrics.hpp"
#include "pal/config.hpp"
#include "pal/table.hpp"

namespace {

using namespace insitu;
using namespace insitu::obs;
using namespace insitu::obs::analyze;

constexpr int kExitUsage = 64;
constexpr int kExitError = 1;
constexpr int kExitRegression = 2;

void usage() {
  std::fputs(
      "usage: perf_report <trace.json|baseline.json|metrics.{csv,json}> "
      "[options]\n"
      "  --metrics <path>         also print a metrics dump\n"
      "  --write-baseline <path>  distill the trace into a baseline file\n"
      "  --check <baseline.json>  compare against a baseline; exit 2 on\n"
      "                           regression beyond tolerance\n"
      "  --tolerance <fraction>   allowed relative growth (default 0.10)\n"
      "  --report-only            with --check: always exit 0\n"
      "  --follow                 input is a live telemetry stream "
      "(JSONL);\n"
      "                           tail it, rendering each frame until the\n"
      "                           final frame arrives (exit 0)\n"
      "  --follow-timeout <sec>   give up following after this long\n"
      "                           (default 30; exit 1 if no frame was "
      "seen)\n"
      "  --top <N>                span rows per run (default: all)\n"
      "  --wall                   add wall-clock columns (nondeterministic)\n"
      "  --no-spans               skip the per-span aggregation tables\n"
      "  --no-overlap             skip overlap / critical-path tables\n",
      stderr);
}

enum class InputKind { kTrace, kBaseline, kMetrics };

/// Peek at the file to classify it without committing to a parser.
StatusOr<InputKind> classify(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open input file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (c != '{' && c != '[') return InputKind::kMetrics;  // CSV
    break;
  }
  if (text.find("\"traceEvents\"") != std::string::npos) {
    return InputKind::kTrace;
  }
  // Match the schema family, not the exact version, so a stale baseline
  // still routes to read_baseline and its version-mismatch diagnostic.
  if (text.find("\"insitu-bench-baseline/") != std::string::npos) {
    return InputKind::kBaseline;
  }
  return InputKind::kMetrics;  // metrics JSON
}

std::string render_metrics_table(const MetricsTable& metrics) {
  pal::TablePrinter table("metrics");
  table.set_header({"run", "metric", "kind", "value", "count", "mean",
                    "p50", "p90", "p99"});
  for (const MetricsRow& row : metrics.rows) {
    if (row.kind == MetricKind::kHistogram) {
      table.add_row({row.run, row.metric, to_string(row.kind), "",
                     std::to_string(row.count),
                     pal::TablePrinter::num(row.mean, 6),
                     pal::TablePrinter::num(row.p50, 6),
                     pal::TablePrinter::num(row.p90, 6),
                     pal::TablePrinter::num(row.p99, 6)});
    } else {
      table.add_row({row.run, row.metric, to_string(row.kind),
                     pal::TablePrinter::num(row.value, 6), "", "", "", "",
                     ""});
    }
  }
  if (metrics.has_meta) {
    table.add_note("tool=" + metrics.meta.tool +
                   " threads=" + std::to_string(metrics.meta.threads) +
                   " seed=" + std::to_string(metrics.meta.seed));
  }
  return table.to_string();
}

std::string render_baseline_table(const Baseline& baseline,
                                  const std::string& title) {
  pal::TablePrinter table(title);
  std::vector<std::string> header = {"run", "ranks", "steps"};
  for (int c = 0; c < kCategoryCount; ++c) {
    header.push_back(to_string(static_cast<Category>(c)));
  }
  header.push_back("total ms");
  header.push_back("end-to-end s");
  table.set_header(std::move(header));
  for (const BaselineRun& run : baseline.runs) {
    std::vector<std::string> row = {run.label, std::to_string(run.nranks),
                                    std::to_string(run.steps)};
    for (int c = 0; c < kCategoryCount; ++c) {
      row.push_back(pal::TablePrinter::num(run.phase_s[c] * 1e3, 6));
    }
    row.push_back(pal::TablePrinter::num(run.total_s * 1e3, 6));
    row.push_back(pal::TablePrinter::num(run.end_to_end_s, 6));
    table.add_row(std::move(row));
  }
  table.add_note("tool=" + baseline.tool +
                 " threads=" + std::to_string(baseline.threads) +
                 " seed=" + std::to_string(baseline.seed));
  if (!baseline.config.empty()) {
    table.add_note("config: " + baseline.config);
  }
  return table.to_string();
}

/// Pool block of a baseline file, one row per run that carries one.
std::string render_baseline_pool_table(const Baseline& baseline) {
  bool any = false;
  for (const BaselineRun& run : baseline.runs) any = any || run.has_pool;
  if (!any) return "";
  constexpr double kMiB = 1024.0 * 1024.0;
  pal::TablePrinter table("buffer pool");
  table.set_header({"run", "hit rate", "alloc MiB", "reused MiB"});
  for (const BaselineRun& run : baseline.runs) {
    if (!run.has_pool) continue;
    table.add_row({run.label, pal::TablePrinter::num(run.pool_hit_rate, 3),
                   pal::TablePrinter::num(run.pool_bytes_allocated / kMiB, 3),
                   pal::TablePrinter::num(run.pool_bytes_reused / kMiB, 3)});
  }
  table.add_note("hit rate gates against the baseline (lower is a "
                 "regression); byte counts are informational");
  return table.to_string();
}

/// Kernel block of a baseline file: one row per run that carries one,
/// with the dominant dispatch variant and per-kernel element totals.
std::string render_baseline_kernel_table(const Baseline& baseline) {
  bool any = false;
  for (const BaselineRun& run : baseline.runs) any = any || run.has_kernels;
  if (!any) return "";
  pal::TablePrinter table("kernel dispatch");
  table.set_header({"run", "variant", "kernel", "elements"});
  for (const BaselineRun& run : baseline.runs) {
    if (!run.has_kernels) continue;
    bool first = true;
    for (const auto& [kernel, elements] : run.kernels_elements) {
      table.add_row({first ? run.label : "", first ? run.kernels_variant : "",
                     kernel, pal::TablePrinter::num(elements, 0)});
      first = false;
    }
  }
  table.add_note("informational only: kernel drift surfaces as check notes, "
                 "never as regressions");
  return table.to_string();
}

/// Distill an imported trace into baseline form (one entry per run).
Baseline baseline_from_runs(const std::vector<AnalyzedRun>& runs,
                            const ExportMeta& meta) {
  Baseline out;
  out.tool = meta.tool;
  out.config = meta.config;
  out.threads = meta.threads;
  out.seed = meta.seed;
  for (const AnalyzedRun& run : runs) {
    out.runs.push_back(
        baseline_run_from_analysis(run.label, run.analysis, meta.seed));
  }
  return out;
}

int run_check(const Baseline& base, const Baseline& current,
              const CheckOptions& options, bool report_only) {
  const CheckResult result = check_baseline(base, current, options);
  if (!result.regressions.empty()) {
    pal::TablePrinter table("perf regressions (tolerance +" +
                            pal::TablePrinter::num(options.tolerance * 100,
                                                   1) +
                            "%)");
    table.set_header({"run", "phase", "baseline s", "current s", "ratio"});
    for (const Regression& r : result.regressions) {
      table.add_row({r.run, r.phase, pal::TablePrinter::num(r.baseline_s, 9),
                     pal::TablePrinter::num(r.current_s, 9),
                     pal::TablePrinter::num(r.ratio(), 3) + "x"});
    }
    table.print();
  }
  for (const std::string& m : result.mismatches) {
    std::printf("mismatch: %s\n", m.c_str());
  }
  for (const std::string& n : result.notes) {
    std::printf("%s\n", n.c_str());
  }
  if (result.ok()) {
    std::printf("PERF CHECK OK: %zu run(s) within +%s%% of baseline\n",
                base.runs.size(),
                pal::TablePrinter::num(options.tolerance * 100, 1).c_str());
    return 0;
  }
  std::printf("PERF CHECK FAILED: %zu regression(s), %zu mismatch(es)\n",
              result.regressions.size(), result.mismatches.size());
  return report_only ? 0 : kExitRegression;
}

int fail(const Status& status) {
  std::fprintf(stderr, "perf_report: %s\n", status.message().c_str());
  // Schema-version mismatches (stale baseline vs current tool, or the
  // reverse) use the gating exit code so CI fails the check rather than
  // silently rendering an empty report.
  return status.code() == StatusCode::kFailedPrecondition ? kExitRegression
                                                          : kExitError;
}

/// One live-telemetry frame (insitu-live/1) rendered as a per-tenant /
/// per-phase status table plus alert lines (docs/OBSERVABILITY.md).
void render_live_frame(const Json& frame, bool tty) {
  if (tty) std::fputs("\x1b[H\x1b[2J", stdout);  // refresh in place
  const auto index = static_cast<long long>(frame.number_or("frame", 0));
  const Json* final_flag = frame.find("final");
  const bool final_frame =
      final_flag != nullptr && final_flag->kind == Json::Kind::kBool &&
      final_flag->boolean;
  pal::TablePrinter table("live telemetry: frame " + std::to_string(index) +
                          (final_frame ? " (final)" : ""));
  table.set_header({"tenant", "phase", "metric", "kind", "value", "count",
                    "p50", "p99", "max"});
  if (const Json* series = frame.find("series");
      series != nullptr && series->is_array()) {
    for (const Json& s : series->array) {
      const std::string key = s.string_or("key", "");
      std::string name = key;
      obs::Labels labels;
      obs::parse_metric_key(key, name, labels);
      std::string tenant;
      obs::Labels rest;
      for (const auto& [k, v] : labels) {
        if (k == "tenant") {
          tenant = v;
        } else {
          rest.emplace_back(k, v);
        }
      }
      const std::string phase = name.substr(0, name.find('.'));
      const std::string kind = s.string_or("kind", "");
      const std::string shown = obs::metric_key(name, rest);
      if (kind == "histogram") {
        table.add_row(
            {tenant, phase, shown, kind, "",
             std::to_string(
                 static_cast<long long>(s.number_or("count", 0))),
             pal::TablePrinter::num(s.number_or("p50", 0.0), 6),
             pal::TablePrinter::num(s.number_or("p99", 0.0), 6),
             pal::TablePrinter::num(s.number_or("max", 0.0), 6)});
      } else {
        table.add_row({tenant, phase, shown, kind,
                       pal::TablePrinter::num(s.number_or("value", 0.0), 6),
                       "", "", "", ""});
      }
    }
  }
  if (const Json* overhead = frame.find("overhead"); overhead != nullptr) {
    table.add_note(
        "hub overhead: busy=" +
        pal::TablePrinter::num(overhead->number_or("busy_seconds", 0.0), 6) +
        "s frames=" +
        std::to_string(
            static_cast<long long>(overhead->number_or("frames", 0))) +
        " sources=" +
        std::to_string(
            static_cast<long long>(overhead->number_or("sources", 0))));
  }
  table.print();
  if (const Json* alerts = frame.find("alerts");
      alerts != nullptr && alerts->is_array()) {
    for (const Json& a : alerts->array) {
      std::printf("ALERT rule=%s tenant=%s key=%s %s=%s threshold=%s "
                  "action=%s\n",
                  a.string_or("rule", "").c_str(),
                  a.string_or("tenant", "").c_str(),
                  a.string_or("key", "").c_str(),
                  a.string_or("stat", "").c_str(),
                  pal::TablePrinter::num(a.number_or("observed", 0.0), 6)
                      .c_str(),
                  pal::TablePrinter::num(a.number_or("threshold", 0.0), 6)
                      .c_str(),
                  a.string_or("action", "").c_str());
    }
  }
  std::fflush(stdout);
}

/// Tail a live telemetry stream: re-render on every new frame, exit 0
/// once the writer marks a frame final. A stream that never finishes is
/// bounded by --follow-timeout: exit 0 if at least one frame rendered
/// (the run is simply still going), exit 1 if nothing ever arrived.
int run_follow(const std::string& path, double timeout_s) {
  const bool tty = ::isatty(::fileno(stdout)) != 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  long long last_frame = -1;
  while (true) {
    std::string text;
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
      }
    }
    // Only complete lines are frames; the writer appends + flushes one
    // JSONL object per tick, so everything before the last '\n' parses.
    if (const std::size_t end = text.rfind('\n');
        end != std::string::npos) {
      const std::string_view complete(text.data(), end);
      const std::size_t begin = complete.rfind('\n');
      const std::string_view line =
          begin == std::string_view::npos ? complete
                                          : complete.substr(begin + 1);
      if (auto parsed = parse_json(line); parsed.ok() &&
          parsed->is_object()) {
        const auto frame =
            static_cast<long long>(parsed->number_or("frame", -1));
        if (frame != last_frame) {
          last_frame = frame;
          render_live_frame(*parsed, tty);
        }
        const Json* final_flag = parsed->find("final");
        if (final_flag != nullptr &&
            final_flag->kind == Json::Kind::kBool && final_flag->boolean) {
          return 0;
        }
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "perf_report: --follow timed out after %.0fs without a "
                   "final frame: %s\n",
                   timeout_s, path.c_str());
      return last_frame >= 0 ? 0 : kExitError;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const pal::Config cfg = pal::Config::from_args(argc, argv);
  if (cfg.positional().size() != 1 || cfg.has("help")) {
    usage();
    return cfg.has("help") ? 0 : kExitUsage;
  }
  const std::string input_path = cfg.positional()[0];

  if (cfg.get_bool_or("follow", false)) {
    return run_follow(input_path, cfg.get_double_or("follow-timeout", 30.0));
  }

  CheckOptions check_options;
  check_options.tolerance = cfg.get_double_or("tolerance", 0.10);
  const bool report_only = cfg.get_bool_or("report-only", false);

  ReportOptions report_options;
  report_options.spans = !cfg.get_bool_or("no-spans", false);
  report_options.overlap = !cfg.get_bool_or("no-overlap", false);
  report_options.wall = cfg.get_bool_or("wall", false);
  report_options.top_spans =
      static_cast<std::size_t>(cfg.get_int_or("top", 0));

  const auto kind = classify(input_path);
  if (!kind.ok()) return fail(kind.status());

  // Resolve the input into (optionally) a report and a baseline view.
  std::optional<Baseline> current;
  switch (*kind) {
    case InputKind::kTrace: {
      auto imported = import_chrome_trace_file(input_path);
      if (!imported.ok()) return fail(imported.status());
      const std::vector<AnalyzedRun> runs = analyze_runs(imported->runs);
      const std::string report = render_report(
          runs, imported->has_meta ? &imported->meta : nullptr,
          report_options);
      std::fwrite(report.data(), 1, report.size(), stdout);
      current = baseline_from_runs(runs, imported->meta);
      break;
    }
    case InputKind::kBaseline: {
      auto baseline = read_baseline_file(input_path);
      if (!baseline.ok()) return fail(baseline.status());
      std::fputs(
          render_baseline_table(*baseline, "baseline: " + input_path)
              .c_str(),
          stdout);
      std::fputs(render_baseline_pool_table(*baseline).c_str(), stdout);
      std::fputs(render_baseline_kernel_table(*baseline).c_str(), stdout);
      current = std::move(*baseline);
      break;
    }
    case InputKind::kMetrics: {
      auto metrics = import_metrics_file(input_path);
      if (!metrics.ok()) return fail(metrics.status());
      std::fputs(render_metrics_table(*metrics).c_str(), stdout);
      std::fputs(render_pool_table(*metrics).c_str(), stdout);
      std::fputs(render_kernel_table(*metrics).c_str(), stdout);
      std::fputs(render_tenant_table(*metrics).c_str(), stdout);
      std::fputs(render_collectives_table(*metrics).c_str(), stdout);
      std::fputs(render_reduction_table(*metrics).c_str(), stdout);
      break;
    }
  }

  if (cfg.has("metrics")) {
    auto metrics = import_metrics_file(cfg.get_string_or("metrics", ""));
    if (!metrics.ok()) return fail(metrics.status());
    std::fputs(render_metrics_table(*metrics).c_str(), stdout);
    std::fputs(render_pool_table(*metrics).c_str(), stdout);
    std::fputs(render_kernel_table(*metrics).c_str(), stdout);
    std::fputs(render_tenant_table(*metrics).c_str(), stdout);
    std::fputs(render_collectives_table(*metrics).c_str(), stdout);
    std::fputs(render_reduction_table(*metrics).c_str(), stdout);
  }

  if (cfg.has("write-baseline")) {
    if (!current.has_value()) {
      std::fputs("perf_report: --write-baseline needs a trace or baseline "
                 "input\n",
                 stderr);
      return kExitUsage;
    }
    const std::string out_path = cfg.get_string_or("write-baseline", "");
    const Status status = write_baseline_file(out_path, *current);
    if (!status.ok()) return fail(status);
    std::printf("wrote baseline: %s (%zu run(s))\n", out_path.c_str(),
                current->runs.size());
  }

  if (cfg.has("check")) {
    if (!current.has_value()) {
      std::fputs("perf_report: --check needs a trace or baseline input\n",
                 stderr);
      return kExitUsage;
    }
    auto base = read_baseline_file(cfg.get_string_or("check", ""));
    if (!base.ok()) return fail(base.status());
    return run_check(*base, *current, check_options, report_only);
  }
  return 0;
}
