// Ablation: kernel dispatch variants (generic / batched / simd).
//
// The kernels:: library promises two things (docs/PERFORMANCE.md "Kernel
// dispatch"): switching variants never changes *what* is computed — the
// virtual clock, histogram contents, and rendered images are identical —
// and the vectorized variants are genuinely faster in wall-clock terms
// on the primitives that dominate per-step in situ cost. This bench
// checks both:
//
//  * Arms: the executed oscillator + histogram + Catalyst-slice pipeline
//    runs once per variant. Virtual end-to-end times must be
//    bit-identical, histogram bins and image hashes equal across arms.
//  * Wall clock: each primitive is timed per variant (best-of-reps);
//    simd must beat generic by >= 1.2x on histogram binning and depth
//    compositing (the two named gates), other primitives report only.
//  * Accuracy: vexp/vsin/vcos are spot-checked against libm within their
//    documented ULP bounds.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "kernels/kernels.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/table.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

constexpr int kRanks = 4;
constexpr int kSteps = 10;

// Wall-clock ratios only mean something in optimized, uninstrumented
// builds; under sanitizers (the TSan CI job runs this bench) or -O0 the
// speedup rows print but do not gate. Virtual-time identity, histogram
// and image equality, and the ULP bounds always gate.
#if defined(__OPTIMIZE__) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
constexpr bool kEnforceWallGates = true;
#else
constexpr bool kEnforceWallGates = false;
#endif

constexpr kernels::Variant kArms[] = {kernels::Variant::kGeneric,
                                      kernels::Variant::kBatched,
                                      kernels::Variant::kSimd};

// ---- pipeline arms ----

struct ArmResult {
  double total = 0.0;              ///< end-to-end virtual seconds
  std::vector<std::int64_t> bins;  ///< final histogram (root)
  std::uint64_t image_hash = 0;    ///< final slice image (root)
};

ArmResult run_arm(kernels::Variant variant, const std::string& label) {
  kernels::set_variant(variant);
  ArmResult result;
  bench::ObsSession* obs = bench::ObsSession::current();
  const comm::Runtime::Options options = bench::ablation_options();

  comm::RunReport report = comm::Runtime::run(
      kRanks, options, [&](comm::Communicator& comm) {
        miniapp::OscillatorSim sim(comm,
                                   bench::ablation_oscillator_config(16, 3.0));
        sim.initialize();
        miniapp::OscillatorDataAdaptor adaptor(sim);

        auto hist = std::make_shared<analysis::HistogramAnalysis>(
            "data", data::Association::kPoint, 64);
        backends::CatalystSliceConfig cs;
        cs.image_width = 256;
        cs.image_height = 144;
        cs.scalar_min = -1.5;
        cs.scalar_max = 1.5;
        auto slice = std::make_shared<backends::CatalystSlice>(cs);

        core::InSituBridge bridge(&comm);
        bridge.add_analysis(hist);
        bridge.add_analysis(slice);
        (void)bridge.initialize();
        for (int s = 0; s < kSteps; ++s) {
          sim.step();
          (void)bridge.execute(adaptor, sim.time(), s);
        }
        (void)bridge.finalize();
        if (comm.rank() == 0) {
          result.bins = hist->last_result().bins;
          result.image_hash = slice->last_image().color_hash();
        }
      });
  result.total = report.max_virtual_seconds();
  if (obs != nullptr) obs->record(label, report);
  return result;
}

// ---- wall-clock primitive timings ----

constexpr std::int64_t kN = 1 << 16;
constexpr int kReps = 9;

std::vector<double> make_input(std::int64_t n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = std::sin(0.001 * static_cast<double>(i));
  }
  return v;
}

/// Best-of-kReps wall seconds for `body()` under `variant`. `iters`
/// calls per rep keep each measurement well above timer resolution.
double time_variant(kernels::Variant variant, int iters,
                    const std::function<void()>& body) {
  kernels::set_variant(variant);
  body();  // warm caches + dispatch
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count() / iters);
  }
  return best;
}

struct PrimitiveTiming {
  const char* name = "";
  bool gated = false;  ///< simd/generic >= 1.2x required
  double seconds[3] = {0.0, 0.0, 0.0};

  double speedup() const {
    return seconds[2] > 0.0 ? seconds[0] / seconds[2] : 0.0;
  }
};

std::vector<PrimitiveTiming> time_primitives() {
  std::vector<PrimitiveTiming> out;
  const std::vector<double> x = make_input(kN);
  const std::vector<double> y(x.rbegin(), x.rend());
  std::vector<double> dst(x.size(), 0.0);
  std::vector<std::int64_t> bins(64, 0);
  const std::uint8_t controls[8] = {0, 0, 255, 255, 255, 0, 0, 255};
  std::vector<std::uint8_t> rgba(4 * x.size());
  std::vector<float> src_d(x.size()), dst_d(x.size());
  std::vector<std::uint8_t> src_c(4 * x.size(), 0x7F);
  std::vector<std::uint8_t> dst_c(4 * x.size(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    src_d[i] = static_cast<float>(i % 3);
    dst_d[i] = static_cast<float>((i + 1) % 3);
  }

  const auto measure = [&out](const char* name, bool gated, int iters,
                              const std::function<void()>& body) {
    PrimitiveTiming t;
    t.name = name;
    t.gated = gated;
    for (const kernels::Variant v : kArms) {
      t.seconds[static_cast<int>(v)] = time_variant(v, iters, body);
    }
    out.push_back(t);
  };

  measure("reduce_moments", false, 64, [&] {
    const kernels::Moments m = kernels::reduce_moments(x.data(), kN, nullptr);
    volatile double sink = m.sum;
    (void)sink;
  });
  measure("histogram_bin", true, 64, [&] {
    kernels::histogram_bin(x.data(), kN, nullptr, -1.0, 2.0, 64,
                           bins.data());
  });
  measure("lerp", false, 64, [&] {
    kernels::lerp(dst.data(), x.data(), y.data(), 0.37, kN);
  });
  measure("colormap", false, 32, [&] {
    kernels::colormap_apply(x.data(), kN, -1.0, 1.0, controls, 2,
                            rgba.data());
  });
  measure("depth_composite", true, 64, [&] {
    kernels::depth_composite(dst_c.data(), dst_d.data(), src_c.data(),
                             src_d.data(), kN);
  });
  measure("oscillator", false, 16, [&] {
    kernels::oscillator_accumulate(dst.data(), kN, 0.0, 1.0, 0, 4.0, 9.0,
                                   100.0, 50.0, 0.8);
  });
  measure("vexp", false, 16, [&] {
    kernels::vexp(x.data(), dst.data(), kN);
  });
  return out;
}

// ---- ULP spot check ----

double ulp_diff(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return (std::isnan(a) && std::isnan(b)) ? 0.0 : 1e30;
  if (a == b) return 0.0;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, 8);
  std::memcpy(&ib, &b, 8);
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  return std::abs(static_cast<double>(ia - ib));
}

double worst_ulp(void (*kernel)(const double*, double*, std::int64_t),
                 double (*ref)(double), double lo, double hi, int samples) {
  std::vector<double> x(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    x[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
  }
  std::vector<double> got(x.size());
  kernel(x.data(), got.data(), samples);
  double worst = 0.0;
  for (int i = 0; i < samples; ++i) {
    worst = std::max(worst, ulp_diff(got[static_cast<std::size_t>(i)],
                                     ref(x[static_cast<std::size_t>(i)])));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  const kernels::Variant entry_variant = kernels::active_variant();
  std::printf("=== bench: ablation — kernel dispatch variants ===\n");
  int rc = 0;

  // ---- arm runs: identical results across variants ----
  ArmResult arms[3];
  pal::TablePrinter pipeline(
      "Oscillator 16^3 + histogram + Catalyst slice (executed, " +
      std::to_string(kRanks) + " ranks, " + std::to_string(kSteps) +
      " steps)");
  pipeline.set_header({"variant", "end-to-end (s)", "histogram total",
                       "image hash"});
  for (const kernels::Variant v : kArms) {
    const int i = static_cast<int>(v);
    arms[i] = run_arm(v, std::string("pipeline/") +
                             std::string(kernels::variant_name(v)) + "/p" +
                             std::to_string(kRanks));
    std::int64_t total = 0;
    for (const std::int64_t b : arms[i].bins) total += b;
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(arms[i].image_hash));
    pipeline.add_row({std::string(kernels::variant_name(v)),
                      pal::TablePrinter::num(arms[i].total, 7),
                      std::to_string(total), hash});
  }
  pipeline.add_note("dispatch must be invisible: identical virtual times, "
                    "histograms, and images across variants");
  pipeline.print();

  const ArmResult& ref = arms[0];
  for (int i = 1; i < 3; ++i) {
    if (arms[i].total != ref.total) {
      std::fprintf(stderr,
                   "FAIL: %s virtual time %.17g != generic %.17g\n",
                   kernels::variant_name(kArms[i]).data(), arms[i].total,
                   ref.total);
      rc = 1;
    }
    if (arms[i].bins != ref.bins) {
      std::fprintf(stderr, "FAIL: %s histogram differs from generic\n",
                   kernels::variant_name(kArms[i]).data());
      rc = 1;
    }
    if (arms[i].image_hash != ref.image_hash) {
      std::fprintf(stderr, "FAIL: %s image differs from generic\n",
                   kernels::variant_name(kArms[i]).data());
      rc = 1;
    }
  }

  // ---- wall-clock primitive table ----
  const std::vector<PrimitiveTiming> timings = time_primitives();
  pal::TablePrinter wall("Primitive wall clock (" + std::to_string(kN) +
                         " elements, best of " + std::to_string(kReps) +
                         ")");
  wall.set_header({"kernel", "generic (us)", "batched (us)", "simd (us)",
                   "simd speedup", "gate"});
  for (const PrimitiveTiming& t : timings) {
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", t.speedup());
    wall.add_row({t.name, pal::TablePrinter::num(t.seconds[0] * 1e6, 2),
                  pal::TablePrinter::num(t.seconds[1] * 1e6, 2),
                  pal::TablePrinter::num(t.seconds[2] * 1e6, 2), speedup,
                  t.gated ? ">= 1.20x" : "report"});
    if (kEnforceWallGates && t.gated && t.speedup() < 1.2) {
      std::fprintf(stderr,
                   "FAIL: %s simd speedup %.2fx below the 1.2x floor\n",
                   t.name, t.speedup());
      rc = 1;
    }
  }
  wall.add_note(kEnforceWallGates
                    ? "wall clock is host-dependent; only the two gated rows "
                      "fail the bench, the rest document the machine"
                    : "unoptimized or sanitized build: wall-clock rows are "
                      "informational, gates skipped");
  wall.print();

  // ---- transcendental accuracy ----
  pal::TablePrinter ulp("Vectorized transcendentals vs libm (worst ULP)");
  ulp.set_header({"kernel", "domain", "worst ULP", "bound"});
  struct UlpCase {
    const char* name;
    void (*kernel)(const double*, double*, std::int64_t);
    double (*ref)(double);
    double lo, hi, bound;
  };
  const UlpCase cases[] = {
      {"vexp", kernels::vexp, std::exp, -700.0, 700.0, kernels::kVexpMaxUlp},
      {"vsin", kernels::vsin, std::sin, -1e6, 1e6, kernels::kVsinMaxUlp},
      {"vcos", kernels::vcos, std::cos, -1e6, 1e6, kernels::kVcosMaxUlp},
  };
  for (const UlpCase& c : cases) {
    double worst = 0.0;
    for (const kernels::Variant v : kArms) {
      kernels::set_variant(v);
      worst = std::max(worst, worst_ulp(c.kernel, c.ref, c.lo, c.hi, 4001));
    }
    char domain[48];
    std::snprintf(domain, sizeof domain, "[%g, %g]", c.lo, c.hi);
    ulp.add_row({c.name, domain, pal::TablePrinter::num(worst, 2),
                 pal::TablePrinter::num(c.bound, 0)});
    if (worst > c.bound) {
      std::fprintf(stderr, "FAIL: %s worst ULP %.2f exceeds bound %.0f\n",
                   c.name, worst, c.bound);
      rc = 1;
    }
  }
  ulp.print();

  kernels::set_variant(entry_variant);
  const int obs_rc = obs.finish();
  return rc != 0 ? rc : obs_rc;
}
