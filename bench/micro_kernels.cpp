// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// figure-level benches: histogram binning, autocorrelation updates, slice
// and isosurface extraction, rasterization, DEFLATE, compositing merges,
// and the collective rendezvous. These quantify the *real* (wall-clock)
// cost of the substrate on the host machine, complementing the virtual-
// clock results.

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/contour.hpp"
#include "analysis/histogram.hpp"
#include "comm/runtime.hpp"
#include "data/image_data.hpp"
#include "io/block_io.hpp"
#include "kernels/kernels.hpp"
#include "pal/buffer_pool.hpp"
#include "render/compositor.hpp"
#include "render/png.hpp"
#include "render/rasterizer.hpp"

namespace {

using namespace insitu;

data::ImageDataPtr make_grid_with_field(std::int64_t n) {
  data::IndexBox box;
  box.cells = {n, n, n};
  auto img = std::make_shared<data::ImageData>(box, data::Vec3{},
                                               data::Vec3{1, 1, 1});
  auto values = data::DataArray::create<double>("s", img->num_points(), 1);
  double* dst = values->component_base<double>(0);
  for (std::int64_t i = 0; i < img->num_points(); ++i) {
    const data::Vec3 p = img->point(i);
    dst[i] = std::sin(0.4 * p.x) * std::cos(0.3 * p.y) + 0.1 * p.z;
  }
  img->point_fields().add(values);
  return img;
}

void BM_HistogramBinning(benchmark::State& state) {
  const auto n = state.range(0);
  auto img = make_grid_with_field(n);
  comm::Runtime::run(1, [&](comm::Communicator& comm) {
    data::MultiBlockDataSet mesh(1);
    mesh.add_block(0, img);
    for (auto _ : state) {
      auto r = analysis::compute_histogram(comm, mesh, "s",
                                           data::Association::kPoint, 64);
      benchmark::DoNotOptimize(r);
    }
  });
  state.SetItemsProcessed(state.iterations() * img->num_points());
}
BENCHMARK(BM_HistogramBinning)->Arg(16)->Arg(32);

void BM_SliceExtraction(benchmark::State& state) {
  auto img = make_grid_with_field(state.range(0));
  for (auto _ : state) {
    auto mesh = analysis::slice_axis(*img, "s", 2, state.range(0) / 2.0);
    benchmark::DoNotOptimize(mesh);
  }
  state.SetItemsProcessed(state.iterations() * img->num_cells());
}
BENCHMARK(BM_SliceExtraction)->Arg(16)->Arg(32);

void BM_Isosurface(benchmark::State& state) {
  auto img = make_grid_with_field(state.range(0));
  for (auto _ : state) {
    auto mesh = analysis::isosurface(*img, "s", 0.3);
    benchmark::DoNotOptimize(mesh);
  }
  state.SetItemsProcessed(state.iterations() * img->num_cells());
}
BENCHMARK(BM_Isosurface)->Arg(16)->Arg(32);

void BM_Rasterize(benchmark::State& state) {
  auto img = make_grid_with_field(24);
  auto mesh = analysis::isosurface(*img, "s", 0.3);
  render::RenderConfig cfg;
  cfg.width = static_cast<int>(state.range(0));
  cfg.height = static_cast<int>(state.range(0));
  cfg.camera = render::default_slice_camera(img->bounds());
  render::Image target(cfg.width, cfg.height);
  for (auto _ : state) {
    target.clear(cfg.background);
    benchmark::DoNotOptimize(render::rasterize(*mesh, cfg, target));
  }
  state.SetItemsProcessed(state.iterations() * mesh->num_triangles());
}
BENCHMARK(BM_Rasterize)->Arg(256)->Arg(512);

void BM_DeflateFixed(benchmark::State& state) {
  // Pseudocolor-image-like data: smooth with repeats.
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i / 16) & 0xFF);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::png::deflate_fixed(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeflateFixed)->Arg(1 << 16)->Arg(1 << 20);

void BM_PngEncode(benchmark::State& state) {
  render::Image img(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)));
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      img.pixel(x, y) = {static_cast<std::uint8_t>(x),
                         static_cast<std::uint8_t>(y), 128, 255};
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::png::encode(img));
  }
  state.SetBytesProcessed(state.iterations() * img.num_pixels() * 4);
}
BENCHMARK(BM_PngEncode)->Arg(256)->Arg(512);

void BM_ImageCompositeMerge(benchmark::State& state) {
  render::Image a(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(0)));
  render::Image b = a;
  for (std::int64_t i = 0; i < b.num_pixels(); ++i) {
    b.depths()[static_cast<std::size_t>(i)] = static_cast<float>(i % 3);
  }
  for (auto _ : state) {
    a.composite_over(b);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * a.num_pixels());
}
BENCHMARK(BM_ImageCompositeMerge)->Arg(512)->Arg(1024);

// ---- pooled-memory / bulk-copy kernels ----

data::DataArrayPtr make_array(std::int64_t tuples, data::Layout layout) {
  auto a = data::DataArray::create<double>("v", tuples, 3, layout);
  for (std::int64_t i = 0; i < tuples; ++i) {
    for (int c = 0; c < 3; ++c) a->set(i, c, 0.25 * static_cast<double>(i + c));
  }
  return a;
}

void BM_DeepCopyAos(benchmark::State& state) {
  auto a = make_array(state.range(0), data::Layout::kAos);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->deep_copy());  // contiguous: single memcpy
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_DeepCopyAos)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeepCopySoa(benchmark::State& state) {
  auto a = make_array(state.range(0), data::Layout::kSoa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->deep_copy());  // per-component memcpy
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_DeepCopySoa)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeepCopyStrided(benchmark::State& state) {
  // Non-unit stride: the typed-gather fallback.
  const std::int64_t tuples = state.range(0);
  std::vector<double> raw(static_cast<std::size_t>(4 * tuples));
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<double>(i);
  }
  auto a = data::DataArray::wrap_typed("v", data::DataType::kFloat64, tuples,
                                       1, {raw.data() + 1}, {4},
                                       data::Layout::kSoa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->deep_copy());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_DeepCopyStrided)->Arg(1 << 12)->Arg(1 << 16);

void BM_ToBytesSoa(benchmark::State& state) {
  // SoA source packs to AoS wire order: the typed gather, not memcpy.
  auto a = make_array(state.range(0), data::Layout::kSoa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->to_bytes());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_ToBytesSoa)->Arg(1 << 12)->Arg(1 << 16);

void BM_PoolAcquireRelease(benchmark::State& state) {
  pal::BufferPool pool;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  pool.release(pool.acquire(bytes));  // warm: steady state is all hits
  for (auto _ : state) {
    std::vector<std::byte> buf = pool.acquire(bytes);
    benchmark::DoNotOptimize(buf.data());
    pool.release(std::move(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease)->Arg(1 << 10)->Arg(1 << 20);

void BM_MallocAcquireRelease(benchmark::State& state) {
  // The unpooled comparison: a fresh vector per step.
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::byte> buf;
    buf.reserve(bytes);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MallocAcquireRelease)->Arg(1 << 10)->Arg(1 << 20);

void BM_SerializeBlock(benchmark::State& state) {
  auto img = make_grid_with_field(state.range(0));
  pal::PooledBuffer buf;
  std::size_t blob = 0;
  for (auto _ : state) {
    buf.bytes().clear();
    blob = io::serialize_block_into(*img, buf.bytes());
    benchmark::DoNotOptimize(buf.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(blob));
}
BENCHMARK(BM_SerializeBlock)->Arg(16)->Arg(32);

// ---- kernel-dispatch primitives, per variant ----
//
// state.range(0) selects the dispatch variant (0 generic, 1 batched,
// 2 simd), state.range(1) the element count. Items/sec is elements/sec,
// so the three variants of one primitive are directly comparable.

void use_variant(benchmark::State& state) {
  const auto v = static_cast<kernels::Variant>(state.range(0));
  kernels::set_variant(v);
  state.SetLabel(std::string(kernels::variant_name(v)));
}

std::vector<double> kernel_input(std::int64_t n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = std::sin(0.001 * static_cast<double>(i));
  }
  return v;
}

constexpr std::int64_t kKernelN = 1 << 16;

void BM_KernelReduceMoments(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> x = kernel_input(state.range(1));
  for (auto _ : state) {
    kernels::Moments m = kernels::reduce_moments(
        x.data(), static_cast<std::int64_t>(x.size()), nullptr);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_KernelReduceMoments)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelHistogramBin(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> x = kernel_input(state.range(1));
  std::vector<std::int64_t> bins(64, 0);
  for (auto _ : state) {
    kernels::histogram_bin(x.data(), static_cast<std::int64_t>(x.size()),
                           nullptr, -1.0, 2.0, 64, bins.data());
    benchmark::DoNotOptimize(bins.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_KernelHistogramBin)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelLerp(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> a = kernel_input(state.range(1));
  std::vector<double> b(a.rbegin(), a.rend());
  std::vector<double> dst(a.size());
  for (auto _ : state) {
    kernels::lerp(dst.data(), a.data(), b.data(), 0.37,
                  static_cast<std::int64_t>(a.size()));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_KernelLerp)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelColormap(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> x = kernel_input(state.range(1));
  const std::uint8_t controls[8] = {0, 0, 255, 255, 255, 0, 0, 255};
  std::vector<std::uint8_t> out(4 * x.size());
  for (auto _ : state) {
    kernels::colormap_apply(x.data(), static_cast<std::int64_t>(x.size()),
                            -1.0, 1.0, controls, 2, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_KernelColormap)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelDepthComposite(benchmark::State& state) {
  use_variant(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint8_t> src_c(4 * n, 0x7F);
  std::vector<float> src_d(n), dst_d0(n);
  for (std::size_t i = 0; i < n; ++i) {
    src_d[i] = static_cast<float>(i % 3);
    dst_d0[i] = static_cast<float>((i + 1) % 3);
  }
  std::vector<std::uint8_t> dst_c(4 * n, 0);
  std::vector<float> dst_d = dst_d0;
  for (auto _ : state) {
    kernels::depth_composite(dst_c.data(), dst_d.data(), src_c.data(),
                             src_d.data(), static_cast<std::int64_t>(n));
    benchmark::DoNotOptimize(dst_c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelDepthComposite)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelOscillator(benchmark::State& state) {
  use_variant(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<double> dst(n, 0.0);
  for (auto _ : state) {
    kernels::oscillator_accumulate(dst.data(), static_cast<std::int64_t>(n),
                                   0.0, 1.0, 0, 4.0, 9.0, 100.0, 50.0, 0.8);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelOscillator)->ArgsProduct({{0, 1, 2}, {1 << 12}});

void BM_KernelVexp(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> x = kernel_input(state.range(1));
  std::vector<double> out(x.size());
  for (auto _ : state) {
    kernels::vexp(x.data(), out.data(), static_cast<std::int64_t>(x.size()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_KernelVexp)->ArgsProduct({{0, 1, 2}, {1 << 14}});

void BM_KernelQuantizeEncode(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> x = kernel_input(state.range(1));
  std::vector<std::uint16_t> q(x.size());
  for (auto _ : state) {
    kernels::quantize_encode(x.data(), static_cast<std::int64_t>(x.size()),
                             -1.0, 65535.0 / 2.0, q.data());
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_KernelQuantizeEncode)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelQuantizeDecode(benchmark::State& state) {
  use_variant(state);
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint16_t> q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = static_cast<std::uint16_t>(i * 2654435761u >> 16);
  }
  std::vector<double> out(n);
  for (auto _ : state) {
    kernels::quantize_decode(q.data(), static_cast<std::int64_t>(n), -1.0,
                             2.0 / 65535.0, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelQuantizeDecode)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelDeltaEncode(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> x = kernel_input(state.range(1));
  std::vector<double> prev(x.rbegin(), x.rend());
  std::vector<std::uint64_t> w(x.size());
  for (auto _ : state) {
    kernels::delta_encode(x.data(), prev.data(),
                          static_cast<std::int64_t>(x.size()), w.data());
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_KernelDeltaEncode)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelDeltaDecode(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> prev = kernel_input(state.range(1));
  std::vector<std::uint64_t> w(prev.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = i % 7 == 0 ? 0x3ff0000000000000ull + i : 0;  // RLE-like mix
  }
  std::vector<double> out(prev.size());
  for (auto _ : state) {
    kernels::delta_decode(w.data(), prev.data(),
                          static_cast<std::int64_t>(prev.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(prev.size()));
}
BENCHMARK(BM_KernelDeltaDecode)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelSubsampleGather(benchmark::State& state) {
  use_variant(state);
  const std::vector<double> x = kernel_input(state.range(1));
  const std::int64_t tuples = static_cast<std::int64_t>(x.size()) / 3;
  std::vector<double> kept(static_cast<std::size_t>((tuples + 3) / 4) * 3);
  for (auto _ : state) {
    const std::int64_t n =
        kernels::subsample_gather(x.data(), tuples, 3, 4, kept.data());
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(kept.data());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_KernelSubsampleGather)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_KernelSubsampleExpand(benchmark::State& state) {
  use_variant(state);
  const std::int64_t tuples = state.range(1) / 3;
  const std::vector<double> kept =
      kernel_input(((tuples + 3) / 4) * 3);
  std::vector<double> out(static_cast<std::size_t>(tuples) * 3);
  for (auto _ : state) {
    kernels::subsample_expand(kept.data(), tuples, 3, 4, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_KernelSubsampleExpand)->ArgsProduct({{0, 1, 2}, {kKernelN}});

void BM_AllreduceRendezvous(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [](comm::Communicator& comm) {
      std::vector<double> v(256, 1.0);
      for (int i = 0; i < 50; ++i) {
        comm.allreduce(std::span<double>(v), comm::ReduceOp::kSum);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_AllreduceRendezvous)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
