// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// figure-level benches: histogram binning, autocorrelation updates, slice
// and isosurface extraction, rasterization, DEFLATE, compositing merges,
// and the collective rendezvous. These quantify the *real* (wall-clock)
// cost of the substrate on the host machine, complementing the virtual-
// clock results.

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/contour.hpp"
#include "analysis/histogram.hpp"
#include "comm/runtime.hpp"
#include "data/image_data.hpp"
#include "io/block_io.hpp"
#include "pal/buffer_pool.hpp"
#include "render/compositor.hpp"
#include "render/png.hpp"
#include "render/rasterizer.hpp"

namespace {

using namespace insitu;

data::ImageDataPtr make_grid_with_field(std::int64_t n) {
  data::IndexBox box;
  box.cells = {n, n, n};
  auto img = std::make_shared<data::ImageData>(box, data::Vec3{},
                                               data::Vec3{1, 1, 1});
  auto values = data::DataArray::create<double>("s", img->num_points(), 1);
  double* dst = values->component_base<double>(0);
  for (std::int64_t i = 0; i < img->num_points(); ++i) {
    const data::Vec3 p = img->point(i);
    dst[i] = std::sin(0.4 * p.x) * std::cos(0.3 * p.y) + 0.1 * p.z;
  }
  img->point_fields().add(values);
  return img;
}

void BM_HistogramBinning(benchmark::State& state) {
  const auto n = state.range(0);
  auto img = make_grid_with_field(n);
  comm::Runtime::run(1, [&](comm::Communicator& comm) {
    data::MultiBlockDataSet mesh(1);
    mesh.add_block(0, img);
    for (auto _ : state) {
      auto r = analysis::compute_histogram(comm, mesh, "s",
                                           data::Association::kPoint, 64);
      benchmark::DoNotOptimize(r);
    }
  });
  state.SetItemsProcessed(state.iterations() * img->num_points());
}
BENCHMARK(BM_HistogramBinning)->Arg(16)->Arg(32);

void BM_SliceExtraction(benchmark::State& state) {
  auto img = make_grid_with_field(state.range(0));
  for (auto _ : state) {
    auto mesh = analysis::slice_axis(*img, "s", 2, state.range(0) / 2.0);
    benchmark::DoNotOptimize(mesh);
  }
  state.SetItemsProcessed(state.iterations() * img->num_cells());
}
BENCHMARK(BM_SliceExtraction)->Arg(16)->Arg(32);

void BM_Isosurface(benchmark::State& state) {
  auto img = make_grid_with_field(state.range(0));
  for (auto _ : state) {
    auto mesh = analysis::isosurface(*img, "s", 0.3);
    benchmark::DoNotOptimize(mesh);
  }
  state.SetItemsProcessed(state.iterations() * img->num_cells());
}
BENCHMARK(BM_Isosurface)->Arg(16)->Arg(32);

void BM_Rasterize(benchmark::State& state) {
  auto img = make_grid_with_field(24);
  auto mesh = analysis::isosurface(*img, "s", 0.3);
  render::RenderConfig cfg;
  cfg.width = static_cast<int>(state.range(0));
  cfg.height = static_cast<int>(state.range(0));
  cfg.camera = render::default_slice_camera(img->bounds());
  render::Image target(cfg.width, cfg.height);
  for (auto _ : state) {
    target.clear(cfg.background);
    benchmark::DoNotOptimize(render::rasterize(*mesh, cfg, target));
  }
  state.SetItemsProcessed(state.iterations() * mesh->num_triangles());
}
BENCHMARK(BM_Rasterize)->Arg(256)->Arg(512);

void BM_DeflateFixed(benchmark::State& state) {
  // Pseudocolor-image-like data: smooth with repeats.
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i / 16) & 0xFF);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::png::deflate_fixed(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeflateFixed)->Arg(1 << 16)->Arg(1 << 20);

void BM_PngEncode(benchmark::State& state) {
  render::Image img(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)));
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      img.pixel(x, y) = {static_cast<std::uint8_t>(x),
                         static_cast<std::uint8_t>(y), 128, 255};
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::png::encode(img));
  }
  state.SetBytesProcessed(state.iterations() * img.num_pixels() * 4);
}
BENCHMARK(BM_PngEncode)->Arg(256)->Arg(512);

void BM_ImageCompositeMerge(benchmark::State& state) {
  render::Image a(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(0)));
  render::Image b = a;
  for (std::int64_t i = 0; i < b.num_pixels(); ++i) {
    b.depths()[static_cast<std::size_t>(i)] = static_cast<float>(i % 3);
  }
  for (auto _ : state) {
    a.composite_over(b);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * a.num_pixels());
}
BENCHMARK(BM_ImageCompositeMerge)->Arg(512)->Arg(1024);

// ---- pooled-memory / bulk-copy kernels ----

data::DataArrayPtr make_array(std::int64_t tuples, data::Layout layout) {
  auto a = data::DataArray::create<double>("v", tuples, 3, layout);
  for (std::int64_t i = 0; i < tuples; ++i) {
    for (int c = 0; c < 3; ++c) a->set(i, c, 0.25 * static_cast<double>(i + c));
  }
  return a;
}

void BM_DeepCopyAos(benchmark::State& state) {
  auto a = make_array(state.range(0), data::Layout::kAos);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->deep_copy());  // contiguous: single memcpy
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_DeepCopyAos)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeepCopySoa(benchmark::State& state) {
  auto a = make_array(state.range(0), data::Layout::kSoa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->deep_copy());  // per-component memcpy
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_DeepCopySoa)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeepCopyStrided(benchmark::State& state) {
  // Non-unit stride: the typed-gather fallback.
  const std::int64_t tuples = state.range(0);
  std::vector<double> raw(static_cast<std::size_t>(4 * tuples));
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<double>(i);
  }
  auto a = data::DataArray::wrap_typed("v", data::DataType::kFloat64, tuples,
                                       1, {raw.data() + 1}, {4},
                                       data::Layout::kSoa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->deep_copy());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_DeepCopyStrided)->Arg(1 << 12)->Arg(1 << 16);

void BM_ToBytesSoa(benchmark::State& state) {
  // SoA source packs to AoS wire order: the typed gather, not memcpy.
  auto a = make_array(state.range(0), data::Layout::kSoa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->to_bytes());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(a->size_bytes()));
}
BENCHMARK(BM_ToBytesSoa)->Arg(1 << 12)->Arg(1 << 16);

void BM_PoolAcquireRelease(benchmark::State& state) {
  pal::BufferPool pool;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  pool.release(pool.acquire(bytes));  // warm: steady state is all hits
  for (auto _ : state) {
    std::vector<std::byte> buf = pool.acquire(bytes);
    benchmark::DoNotOptimize(buf.data());
    pool.release(std::move(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease)->Arg(1 << 10)->Arg(1 << 20);

void BM_MallocAcquireRelease(benchmark::State& state) {
  // The unpooled comparison: a fresh vector per step.
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::byte> buf;
    buf.reserve(bytes);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MallocAcquireRelease)->Arg(1 << 10)->Arg(1 << 20);

void BM_SerializeBlock(benchmark::State& state) {
  auto img = make_grid_with_field(state.range(0));
  pal::PooledBuffer buf;
  std::size_t blob = 0;
  for (auto _ : state) {
    buf.bytes().clear();
    blob = io::serialize_block_into(*img, buf.bytes());
    benchmark::DoNotOptimize(buf.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(blob));
}
BENCHMARK(BM_SerializeBlock)->Arg(16)->Arg(32);

void BM_AllreduceRendezvous(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [](comm::Communicator& comm) {
      std::vector<double> v(256, 1.0);
      for (int i = 0; i < 50; ++i) {
        comm.allreduce(std::span<double>(v), comm::ReduceOp::kSum);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_AllreduceRendezvous)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
