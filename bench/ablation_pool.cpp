// Ablation: buffer-pool recycling on the per-step hot path.
//
// The paper's per-timestep overhead figures (Figs 3-7) charge every byte
// the infrastructure touches each step. Allocation churn is the part the
// virtual clock cannot see: snapshots, serialization, and staging writes
// used to materialize fresh std::vector storage every step and free it
// milliseconds later. This bench runs the same snapshot-heavy pipeline
// (AsyncBridge snapshot + histogram + collective serialization) with the
// pal::BufferPool enabled and disabled and reports real allocation
// traffic: fresh bytes allocated per step, bytes served from the free
// list, and the pool hit rate. Virtual times must be identical across the
// two arms — pooling is invisible to the model by construction.

#include <cstdio>
#include <string>

#include "analysis/histogram.hpp"
#include "comm/runtime.hpp"
#include "core/async_bridge.hpp"
#include "io/writers.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/buffer_pool.hpp"
#include "pal/table.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

constexpr int kSteps = 40;

struct ArmResult {
  double total = 0.0;         // end-to-end virtual seconds
  pal::BufferPoolStats pool;  // counter deltas for this arm
};

ArmResult run_arm(int ranks, bool pooled, const std::string& label) {
  pal::BufferPool& pool = pal::buffer_pool();
  pool.clear();  // one arm must not warm the other's free list
  pool.set_enabled(pooled);
  const pal::BufferPoolStats start = pool.stats();

  bench::ObsSession* obs = bench::ObsSession::current();
  const comm::Runtime::Options options = bench::ablation_options();

  comm::RunReport report = comm::Runtime::run(
      ranks, options, [&](comm::Communicator& comm) {
        miniapp::OscillatorSim sim(comm,
                                   bench::ablation_oscillator_config(16, 3.0));
        sim.initialize();
        miniapp::OscillatorDataAdaptor adaptor(sim);

        // Snapshot churn: the async bridge deep-copies the mesh each step
        // and recycles the arrays after analysis.
        core::AsyncBridgeOptions abo;
        abo.policy = comm::BackpressurePolicy::kBlock;
        abo.queue_depth = 2;
        core::AsyncBridge bridge(&comm, abo);
        bridge.add_analysis(std::make_shared<analysis::HistogramAnalysis>(
            "data", data::Association::kPoint, 64));
        (void)bridge.initialize();

        // Serialization churn: collective funnel to rank 0 (no disk; the
        // serialize + funnel path is what allocates).
        io::CollectiveWriter writer("", io::LustreModel(comm.machine().fs),
                                    /*write_to_disk=*/false);

        for (int s = 0; s < kSteps; ++s) {
          sim.step();
          (void)bridge.execute(adaptor, sim.time(), s);
          StatusOr<data::MultiBlockPtr> mesh = adaptor.mesh(false);
          if (mesh.ok()) {
            (void)adaptor.add_array(**mesh, data::Association::kPoint,
                                    "data");
            (void)writer.write_step(comm, **mesh, s);
          }
        }
        (void)bridge.finalize();
      });

  ArmResult result;
  result.total = report.max_virtual_seconds();
  result.pool = pool.stats_since(start);
  if (obs != nullptr) obs->record(label, report);
  return result;
}

std::string mib_per_step(std::uint64_t bytes) {
  return pal::TablePrinter::num(
      static_cast<double>(bytes) / (1024.0 * 1024.0) / kSteps, 3);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: ablation — buffer-pool recycling ===\n");

  double worst_pooled_hit_rate = 1.0;
  double worst_time_skew = 0.0;

  pal::TablePrinter table("Oscillator 16^3 + async histogram + collective "
                          "serialize (executed, " +
                          std::to_string(kSteps) + " steps)");
  table.set_header({"ranks", "pool", "end-to-end (s)", "alloc MiB/step",
                    "reused MiB/step", "hit rate", "hits/misses"});
  for (const int ranks : {4, 8}) {
    const ArmResult off =
        run_arm(ranks, /*pooled=*/false, "pool-off/p" + std::to_string(ranks));
    const ArmResult on =
        run_arm(ranks, /*pooled=*/true, "pool-on/p" + std::to_string(ranks));
    for (const auto* arm : {&off, &on}) {
      table.add_row({std::to_string(ranks), arm == &on ? "on" : "off",
                     pal::TablePrinter::num(arm->total, 5),
                     mib_per_step(arm->pool.bytes_allocated),
                     mib_per_step(arm->pool.bytes_reused),
                     pal::TablePrinter::num(arm->pool.hit_rate(), 3),
                     std::to_string(arm->pool.hits) + "/" +
                         std::to_string(arm->pool.misses)});
    }
    worst_pooled_hit_rate =
        std::min(worst_pooled_hit_rate, on.pool.hit_rate());
    if (off.total > 0.0) {
      worst_time_skew = std::max(
          worst_time_skew, std::abs(on.total - off.total) / off.total);
    }
  }
  table.add_note("pooling must not move the virtual clock: the two arms' "
                 "end-to-end times are identical");
  table.add_note("steady state acquires come from the free list; fresh "
                 "allocation collapses to the warmup steps");
  table.print();

  pal::buffer_pool().set_enabled(true);

  int rc = obs.finish();
  if (worst_pooled_hit_rate < 0.90) {
    std::fprintf(stderr,
                 "FAIL: pooled hit rate %.3f below the 0.90 floor\n",
                 worst_pooled_hit_rate);
    rc = 1;
  }
  if (worst_time_skew > 1e-12) {
    std::fprintf(stderr,
                 "FAIL: pooling changed end-to-end virtual time (skew %g)\n",
                 worst_time_skew);
    rc = 1;
  }
  return rc;
}
