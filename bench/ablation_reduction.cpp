// Ablation: in transit data reduction under backpressure.
//
// Runs the Fig 8/9 FlexPath pairs workload at every fixed reduction
// level (none / delta / subsample / quantize) and gates the
// bandwidth-vs-fidelity trade the levels are supposed to buy:
//  * bytes moved at quantize must be <= 1/2 of the unreduced stream
//    (the ">= 2x reduction" headline),
//  * lossless levels (delta) must reproduce the endpoint's histogram
//    bins and slice image bit-for-bit,
//  * lossy levels (subsample, quantize) must stay inside documented
//    fidelity bounds (normalized histogram L1, slice mean-abs-diff),
//  * with the controller disabled every arm is rerun and the per-rank
//    virtual clocks must be identical (reduction costs are modeled in
//    virtual time, never wall-clock-dependent).
//
// Two adaptive arms then exercise the backpressure controller:
//  * "pressured": a slow Catalyst-slice endpoint keeps the staging
//    queue saturated, so the controller must raise the level and hold
//    it (io.reduction.level >= 1 at end of run, raises >= 1).
//  * "recovery": a fast histogram endpoint behind the slow Cori reader
//    bootstrap — the seeded backlog forces a raise, the drain must
//    hysteretically lower back to the base level. Run under both
//    sched=threads and sched=mn to pin controller determinism to the
//    virtual clock rather than an execution backend.

#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "backends/flexpath.hpp"
#include "bench_common.hpp"
#include "comm/sched.hpp"
#include "io/reduction.hpp"
#include "obs/metrics.hpp"
#include "render/image.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

constexpr int kPairs = 4;
constexpr int kSteps = 8;
constexpr int kRecoverySteps = 24;
constexpr int kBins = 64;

enum class Endpoint { kFidelity, kSliceOnly, kHistogramOnly };

struct ArmResult {
  comm::RunReport report;
  std::vector<double> clocks;      ///< per-rank virtual seconds
  std::vector<std::int64_t> bins;  ///< endpoint-root histogram, final step
  std::int64_t bin_total = 0;
  render::Image image;  ///< endpoint-root slice, final step
  double bytes_moved = 0.0;
  double reduction_in = 0.0;
  double reduction_out = 0.0;
  double encode_p99 = 0.0;
  double level_gauge = -1.0;
  double raises = 0.0;
  double lowers = 0.0;
};

const obs::MetricSample* find_sample(const comm::RunReport& report,
                                     const std::string& key) {
  for (const auto& sample : report.metrics) {
    if (sample.key == key) return &sample;
  }
  return nullptr;
}

double sample_value(const comm::RunReport& report, const std::string& key) {
  const obs::MetricSample* s = find_sample(report, key);
  return s == nullptr ? 0.0 : s->value;
}

ArmResult run_arm(const std::string& label,
                  const backends::FlexPathOptions& fp, Endpoint endpoint,
                  int steps, std::optional<comm::SchedBackend> sched,
                  bool record) {
  ArmResult out;
  ObsSession* obs = ObsSession::current();
  comm::Runtime::Options options = ablation_options();
  if (sched.has_value()) options.sched.backend = *sched;

  out.report = comm::Runtime::run(
      2 * kPairs, options, [&](comm::Communicator& world) {
        const bool is_writer = world.rank() < kPairs;
        comm::Communicator group = world.split(is_writer ? 0 : 1, world.rank());
        if (is_writer) {
          miniapp::OscillatorSim sim(group,
                                     ablation_oscillator_config(24, 5.0));
          sim.initialize();
          miniapp::OscillatorDataAdaptor adaptor(sim);
          auto writer = std::make_shared<backends::FlexPathWriter>(
              world, world.rank() + kPairs, fp);
          core::InSituBridge bridge(&group);
          bridge.add_analysis(writer);
          (void)bridge.initialize();
          for (int s = 0; s < steps; ++s) {
            (void)bridge.execute(adaptor, sim.time(), s);
            sim.step();
          }
          (void)bridge.finalize();
        } else {
          core::InSituBridge bridge(&group);
          std::shared_ptr<analysis::HistogramAnalysis> hist;
          std::shared_ptr<backends::CatalystSlice> slice;
          if (endpoint != Endpoint::kSliceOnly) {
            hist = std::make_shared<analysis::HistogramAnalysis>(
                "data", data::Association::kPoint, kBins);
            bridge.add_analysis(hist);
          }
          if (endpoint != Endpoint::kHistogramOnly) {
            backends::CatalystSliceConfig cs;
            cs.image_width = 256;
            cs.image_height = 144;
            cs.scalar_min = -1.5;
            cs.scalar_max = 1.5;
            slice = std::make_shared<backends::CatalystSlice>(cs);
            bridge.add_analysis(slice);
          }
          (void)bridge.initialize();
          backends::FlexPathEndpoint ep(world, world.rank() - kPairs, fp);
          (void)ep.run(group, bridge);
          (void)bridge.finalize();
          if (group.rank() == 0) {
            if (hist != nullptr) {
              out.bins = hist->last_result().bins;
              for (std::int64_t b : out.bins) out.bin_total += b;
            }
            if (slice != nullptr) out.image = slice->last_image();
          }
        }
      });

  for (const auto& rank : out.report.ranks) {
    out.clocks.push_back(rank.virtual_seconds);
  }
  const obs::Labels backend = {{"backend", "flexpath"}};
  const obs::Labels var = {{"backend", "flexpath"}, {"variable", "data"}};
  out.bytes_moved = sample_value(
      out.report, obs::metric_key("comm.bytes_sent", {{"op", "flexpath"}}));
  out.reduction_in =
      sample_value(out.report, obs::metric_key("io.reduction.bytes_in", var));
  out.reduction_out =
      sample_value(out.report, obs::metric_key("io.reduction.bytes_out", var));
  out.level_gauge =
      sample_value(out.report, obs::metric_key("io.reduction.level", var));
  out.raises = sample_value(out.report,
                            obs::metric_key("io.reduction.raises", backend));
  out.lowers = sample_value(out.report,
                            obs::metric_key("io.reduction.lowers", backend));
  const obs::MetricSample* enc = find_sample(
      out.report, obs::metric_key("io.reduction.encode.seconds", backend));
  if (enc != nullptr) out.encode_p99 = obs::histogram_quantile(*enc, 0.99);
  if (obs != nullptr && record) {
    obs->record(label + "/p" + std::to_string(2 * kPairs), out.report);
  }
  return out;
}

/// Normalized L1 distance between two 64-bin histograms (0 = identical,
/// 2 = disjoint).
double histogram_l1(const ArmResult& a, const ArmResult& b) {
  if (a.bins.size() != b.bins.size() || a.bin_total == 0 || b.bin_total == 0) {
    return 2.0;
  }
  double l1 = 0.0;
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    l1 += std::abs(static_cast<double>(a.bins[i]) / a.bin_total -
                   static_cast<double>(b.bins[i]) / b.bin_total);
  }
  return l1;
}

/// Mean absolute per-channel (RGB) difference between two slice images.
double image_mad(const render::Image& a, const render::Image& b) {
  if (a.num_pixels() == 0 || a.num_pixels() != b.num_pixels()) return 255.0;
  double sum = 0.0;
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    sum += std::abs(static_cast<int>(pa[i].r) - static_cast<int>(pb[i].r));
    sum += std::abs(static_cast<int>(pa[i].g) - static_cast<int>(pb[i].g));
    sum += std::abs(static_cast<int>(pa[i].b) - static_cast<int>(pb[i].b));
  }
  return sum / (static_cast<double>(pa.size()) * 3.0);
}

std::string ratio_str(const ArmResult& r) {
  if (r.reduction_out <= 0.0) return "-";
  return pal::TablePrinter::num(r.reduction_in / r.reduction_out, 2) + "x";
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: in transit data reduction ablation ===\n");
  int rc = 0;
  auto fail = [&rc](const std::string& message) {
    std::fprintf(stderr, "FAIL: %s\n", message.c_str());
    rc = 1;
  };

  // --- Fixed-level arms (controller disabled). -------------------------
  std::map<io::ReductionLevel, ArmResult> fixed;
  for (const auto level :
       {io::ReductionLevel::kNone, io::ReductionLevel::kDelta,
        io::ReductionLevel::kSubsample, io::ReductionLevel::kQuantize}) {
    backends::FlexPathOptions fp;
    fp.reader_init_seconds = 1.2;  // match fig08_09's Cori tuning
    // kNone stays disengaged: the baseline stream is the plain BP
    // framing, bit-identical to the pre-reduction transport.
    if (level != io::ReductionLevel::kNone) fp.reduction.level = level;
    const std::string label =
        std::string("reduction-") + io::to_string(level);
    ArmResult first =
        run_arm(label, fp, Endpoint::kFidelity, kSteps, std::nullopt, true);
    const ArmResult second =
        run_arm(label, fp, Endpoint::kFidelity, kSteps, std::nullopt, false);
    if (first.clocks != second.clocks) {
      fail(std::string(io::to_string(level)) +
           ": per-rank virtual clocks differ between identical runs");
    }
    fixed.emplace(level, std::move(first));
  }
  const ArmResult& none = fixed.at(io::ReductionLevel::kNone);
  const ArmResult& delta = fixed.at(io::ReductionLevel::kDelta);
  const ArmResult& subsample = fixed.at(io::ReductionLevel::kSubsample);
  const ArmResult& quantize = fixed.at(io::ReductionLevel::kQuantize);

  // Bandwidth: quantize must at least halve the bytes on the wire.
  if (!(quantize.bytes_moved <= 0.5 * none.bytes_moved)) {
    fail("quantize moved " + std::to_string(quantize.bytes_moved) +
         " bytes, want <= 0.5 * " + std::to_string(none.bytes_moved));
  }
  // Lossless fidelity: delta reconstructs bit-identically, so the
  // endpoint's derived products must match the unreduced run exactly.
  if (delta.bins != none.bins) {
    fail("delta: endpoint histogram differs from the unreduced run");
  }
  if (delta.image.color_hash() != none.image.color_hash()) {
    fail("delta: endpoint slice image differs from the unreduced run");
  }
  // Lossy fidelity: bounded error. Quantize's per-value bound is
  // step/2 (~2.3e-5 of the scalar range here) — derived products stay
  // near-identical. Subsample reconstructs piecewise-constant at
  // stride 2, a visibly coarser but bounded approximation.
  const double sub_l1 = histogram_l1(subsample, none);
  const double quant_l1 = histogram_l1(quantize, none);
  const double sub_mad = image_mad(subsample.image, none.image);
  const double quant_mad = image_mad(quantize.image, none.image);
  if (!(quant_l1 <= 0.02)) {
    fail("quantize: histogram L1 " + std::to_string(quant_l1) + " > 0.02");
  }
  if (!(sub_l1 <= 0.35)) {
    fail("subsample: histogram L1 " + std::to_string(sub_l1) + " > 0.35");
  }
  if (!(quant_mad <= 1.0)) {
    fail("quantize: slice MAD " + std::to_string(quant_mad) + " > 1.0");
  }
  if (!(sub_mad <= 24.0)) {
    fail("subsample: slice MAD " + std::to_string(sub_mad) + " > 24.0");
  }
  // Fixed arms must never touch the controller.
  for (const auto& [level, arm] : fixed) {
    if (arm.raises != 0.0 || arm.lowers != 0.0) {
      fail(std::string(io::to_string(level)) +
           ": controller acted despite adaptive=false");
    }
  }

  pal::TablePrinter table("In transit reduction: bandwidth vs fidelity");
  table.set_header({"level", "bytes moved (MiB)", "ratio", "encode p99 (s)",
                    "hist L1", "slice MAD", "clocks"});
  const double mib = 1024.0 * 1024.0;
  for (const auto& [level, arm] : fixed) {
    table.add_row({io::to_string(level),
                   pal::TablePrinter::num(arm.bytes_moved / mib, 2),
                   ratio_str(arm),
                   pal::TablePrinter::num(arm.encode_p99, 6),
                   pal::TablePrinter::num(histogram_l1(arm, none), 4),
                   pal::TablePrinter::num(image_mad(arm.image, none.image), 2),
                   "identical"});
  }
  table.add_note("ratio = io.reduction.bytes_in / bytes_out (variable=data)");
  table.add_note("fidelity vs the unreduced run; delta is bit-lossless");
  table.print();

  // --- Adaptive arms (controller enabled). -----------------------------
  // Pressured: the Catalyst-slice endpoint is slower than the writer,
  // so the staging queue saturates and the controller must raise the
  // level and hold it for the rest of the run.
  backends::FlexPathOptions pressured_fp;
  pressured_fp.reader_init_seconds = 1.2;
  pressured_fp.reduction.adaptive = true;
  const ArmResult pressured =
      run_arm("adaptive-pressured", pressured_fp, Endpoint::kSliceOnly,
              kSteps, std::nullopt, true);
  if (!(pressured.raises >= 1.0)) {
    fail("pressured: controller never raised under a saturated queue");
  }
  if (!(pressured.level_gauge >= 1.0)) {
    fail("pressured: io.reduction.level ended at " +
         std::to_string(pressured.level_gauge) + ", want >= 1");
  }

  // Recovery: the histogram endpoint outruns the writer once the slow
  // reader bootstrap drains, so every raise must be matched by a
  // hysteretic lower and the run must end back at the base level.
  pal::TablePrinter adaptive("Adaptive controller: raise under pressure, "
                             "hysteretic recovery");
  adaptive.set_header(
      {"arm", "sched", "raises", "lowers", "final level", "job (s)"});
  adaptive.add_row({"pressured (slice endpoint)", "threads",
                    pal::TablePrinter::num(pressured.raises, 0),
                    pal::TablePrinter::num(pressured.lowers, 0),
                    pal::TablePrinter::num(pressured.level_gauge, 0),
                    pal::TablePrinter::num(
                        pressured.report.max_virtual_seconds(), 3)});
  for (const auto& [name, backend] :
       std::vector<std::pair<std::string, comm::SchedBackend>>{
           {"threads", comm::SchedBackend::kThreads},
           {"mn", comm::SchedBackend::kMn}}) {
    backends::FlexPathOptions fp;
    fp.reader_init_seconds = 1.2;  // seeds the backlog the drain recovers
    fp.reduction.adaptive = true;
    const ArmResult recovery =
        run_arm("adaptive-recovery-" + name, fp, Endpoint::kHistogramOnly,
                kRecoverySteps, backend, true);
    if (!(recovery.raises >= 1.0)) {
      fail("recovery/" + name + ": controller never raised");
    }
    if (recovery.lowers != recovery.raises) {
      fail("recovery/" + name + ": " +
           std::to_string(recovery.raises) + " raises vs " +
           std::to_string(recovery.lowers) +
           " lowers; queue drain should lower back to base");
    }
    if (recovery.level_gauge != 0.0) {
      fail("recovery/" + name + ": final io.reduction.level " +
           std::to_string(recovery.level_gauge) + ", want 0");
    }
    adaptive.add_row({"recovery (histogram endpoint)", name,
                      pal::TablePrinter::num(recovery.raises, 0),
                      pal::TablePrinter::num(recovery.lowers, 0),
                      pal::TablePrinter::num(recovery.level_gauge, 0),
                      pal::TablePrinter::num(
                          recovery.report.max_virtual_seconds(), 3)});
  }
  adaptive.add_note("signal = outstanding staged steps (+1 when the submit "
                    "stalled); raise at >= 3, lower at <= 2 after 2 calm "
                    "steps");
  adaptive.print();

  if (rc == 0) std::printf("all reduction ablation gates passed\n");
  return rc != 0 ? rc : obs.finish();
}
