// Ablation: scheduler backends (threads / mn).
//
// The M:N scheduler's contract (docs/SCALING.md) is that *how* ranks are
// executed is invisible to *what* they compute: multiplexing thousands
// of rank continuations onto a few carrier workers must yield exactly
// the results of one OS thread per rank. This bench runs the executed
// oscillator + histogram + Catalyst-slice pipeline once per arm —
//
//   * threads        — one OS thread per rank (the reference),
//   * mn             — fiber scheduler, one carrier per hardware thread,
//   * mn/workers=1   — fiber scheduler on a single carrier (maximally
//                      serialized: every interleaving decision differs
//                      from the threads arm),
//
// at several rank counts, and gates bit-identical per-rank virtual
// times, histogram contents, and rendered-image hashes across arms.
// A wall-clock table reports (but never gates) the cost of each backend
// at executed scale.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "comm/runtime.hpp"
#include "comm/sched.hpp"
#include "core/bridge.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/table.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

constexpr int kSteps = 10;

struct Arm {
  const char* name;
  comm::SchedBackend backend;
  int workers;  // 0 = hardware concurrency
};

constexpr Arm kArms[] = {
    {"threads", comm::SchedBackend::kThreads, 0},
    {"mn", comm::SchedBackend::kMn, 0},
    {"mn/workers=1", comm::SchedBackend::kMn, 1},
};

struct ArmResult {
  std::vector<double> rank_times;  ///< per-rank virtual seconds
  double total = 0.0;              ///< end-to-end virtual seconds
  std::vector<std::int64_t> bins;  ///< final histogram (root)
  std::uint64_t image_hash = 0;    ///< final slice image (root)
  double wall_seconds = 0.0;
};

ArmResult run_arm(const Arm& arm, int ranks, const std::string& label) {
  ArmResult result;
  bench::ObsSession* obs = bench::ObsSession::current();
  comm::Runtime::Options options = bench::ablation_options();
  options.sched.backend = arm.backend;
  options.sched.workers = arm.workers;

  const auto wall0 = std::chrono::steady_clock::now();
  comm::RunReport report = comm::Runtime::run(
      ranks, options, [&](comm::Communicator& comm) {
        miniapp::OscillatorSim sim(comm,
                                   bench::ablation_oscillator_config(16, 3.0));
        sim.initialize();
        miniapp::OscillatorDataAdaptor adaptor(sim);

        auto hist = std::make_shared<analysis::HistogramAnalysis>(
            "data", data::Association::kPoint, 64);
        backends::CatalystSliceConfig cs;
        cs.image_width = 256;
        cs.image_height = 144;
        cs.scalar_min = -1.5;
        cs.scalar_max = 1.5;
        auto slice = std::make_shared<backends::CatalystSlice>(cs);

        core::InSituBridge bridge(&comm);
        bridge.add_analysis(hist);
        bridge.add_analysis(slice);
        (void)bridge.initialize();
        for (int s = 0; s < kSteps; ++s) {
          sim.step();
          (void)bridge.execute(adaptor, sim.time(), s);
        }
        (void)bridge.finalize();
        if (comm.rank() == 0) {
          result.bins = hist->last_result().bins;
          result.image_hash = slice->last_image().color_hash();
        }
      });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall0;
  result.wall_seconds = wall.count();
  result.total = report.max_virtual_seconds();
  result.rank_times.reserve(report.ranks.size());
  for (const comm::RankStats& r : report.ranks) {
    result.rank_times.push_back(r.virtual_seconds);
  }
  if (obs != nullptr) obs->record(label, report);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: ablation — scheduler backends ===\n");
  int rc = 0;

  // Default rank counts overlap the thread backend's comfortable range;
  // `ranks=` raises them (e.g. a 1024-rank mn-only spot check — the
  // threads arm still runs, so keep overrides moderate).
  std::vector<int> rank_counts = {4, 16, 64};
  if (bench::ObsSession::current() != nullptr &&
      !bench::ObsSession::current()->ranks_override().empty()) {
    rank_counts = bench::ObsSession::current()->ranks_override();
  }

  pal::TablePrinter table(
      "Oscillator 16^3 + histogram + Catalyst slice (executed, " +
      std::to_string(kSteps) + " steps)");
  table.set_header({"ranks", "backend", "end-to-end virt (s)",
                    "histogram total", "image hash", "wall (s)"});

  for (const int ranks : rank_counts) {
    ArmResult arms[3];
    for (std::size_t i = 0; i < std::size(kArms); ++i) {
      arms[i] = run_arm(kArms[i], ranks,
                        std::string("pipeline/") + kArms[i].name + "/p" +
                            std::to_string(ranks));
      std::int64_t total_count = 0;
      for (const std::int64_t b : arms[i].bins) total_count += b;
      char hash[32];
      std::snprintf(hash, sizeof hash, "%016llx",
                    static_cast<unsigned long long>(arms[i].image_hash));
      table.add_row({std::to_string(ranks), kArms[i].name,
                     pal::TablePrinter::num(arms[i].total, 7),
                     std::to_string(total_count), hash,
                     pal::TablePrinter::num(arms[i].wall_seconds, 3)});
    }

    const ArmResult& ref = arms[0];
    for (std::size_t i = 1; i < std::size(kArms); ++i) {
      if (arms[i].rank_times != ref.rank_times) {
        std::fprintf(stderr,
                     "FAIL: %s per-rank virtual times differ from threads "
                     "at %d ranks\n",
                     kArms[i].name, ranks);
        rc = 1;
      }
      if (arms[i].total != ref.total) {
        std::fprintf(stderr,
                     "FAIL: %s virtual total %.17g != threads %.17g at %d "
                     "ranks\n",
                     kArms[i].name, arms[i].total, ref.total, ranks);
        rc = 1;
      }
      if (arms[i].bins != ref.bins) {
        std::fprintf(stderr,
                     "FAIL: %s histogram differs from threads at %d ranks\n",
                     kArms[i].name, ranks);
        rc = 1;
      }
      if (arms[i].image_hash != ref.image_hash) {
        std::fprintf(stderr,
                     "FAIL: %s image differs from threads at %d ranks\n",
                     kArms[i].name, ranks);
        rc = 1;
      }
    }
  }
  table.add_note("backends must be interchangeable: bit-identical per-rank "
                 "virtual times, histograms, and images");
  table.add_note("wall seconds are host-dependent and never gate");
  table.print();

  const int obs_rc = obs.finish();
  return rc != 0 ? rc : obs_rc;
}
