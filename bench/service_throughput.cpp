// service_throughput: the multi-tenant service under concurrent load.
//
// Drives src/service with N concurrent sessions spread across M tenants
// and measures what the paper's shared-infrastructure story needs
// measured: sustained session throughput, p99 in situ step latency per
// tenant, and — the property everything else rests on — that fairness,
// quotas, and co-tenancy never change what a session computes. The
// bench re-runs every session solo and exits 1 unless each rank's
// virtual clock matches the concurrent run bit for bit. It also gates
// the quota path: an over-quota session must end rejected (or degraded
// under policy=degrade) with a `service.admission{outcome=}` metric,
// never an abort.
//
//   service_throughput [sessions=32] [tenants=4] [runners=8] [steps=6]
//                      [grid=12] [session_ranks=2] [policy=queue]
//                      [sched=threads|mn] [live=stream.jsonl]
//                      [--metrics F] [--baseline F] [--trace F]
//
// `live=<path>` runs an extra phase with a TelemetryHub attached to the
// service: frames stream to <path> (tail with `perf_report --follow`), a
// health rule watches the quota-overage counter, and a seeded runtime
// breach must fire >= 1 obs.health.alert, leave a parseable flight dump
// at <path>.flight, and degrade the breaching tenant's next session.
//
// Exit codes: 0 ok, 1 gate failure (lost session, identity mismatch,
// missing admission metric, missing alert/dump), 2 usage error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/live/telemetry_hub.hpp"
#include "service/session_manager.hpp"

namespace insitu::bench {
namespace {

service::SessionSpec make_spec(int index, int tenants, int ranks,
                               std::int64_t grid, int steps) {
  service::SessionSpec spec;
  spec.tenant = "t" + std::to_string(index % tenants);
  spec.name = spec.tenant + "/s" + std::to_string(index / tenants);
  spec.ranks = ranks;
  spec.grid = grid;
  spec.steps = steps;
  // Distinct weights exercise the stride scheduler; distinct seeds make
  // every session compute distinct results (a shared seed could mask
  // cross-session state leaks in the identity gate).
  spec.weight = 1.0 + static_cast<double>(index % tenants);
  spec.seed = 1000 + static_cast<std::uint64_t>(index);
  spec.machine = "cori";
  spec.analyses.set("histogram.enabled", "true");
  spec.analyses.set("histogram.bins", "32");
  spec.analyses.set("statistics.enabled", "true");
  return spec;
}

int run(int argc, const char* const* argv) {
  ObsSession obs(argc, argv);
  const pal::Config args = pal::Config::from_args(argc, argv);

  const int sessions = static_cast<int>(args.get_int_or("sessions", 32));
  const int tenants = static_cast<int>(args.get_int_or("tenants", 4));
  const int runners = static_cast<int>(args.get_int_or("runners", 8));
  const int steps = static_cast<int>(args.get_int_or("steps", 6));
  const std::int64_t grid = args.get_int_or("grid", 12);
  const int ranks = static_cast<int>(args.get_int_or("session_ranks", 2));
  if (sessions < 1 || tenants < 1 || runners < 1 || steps < 1 || grid < 2 ||
      ranks < 1) {
    std::fprintf(stderr, "error: all sizing knobs must be positive\n");
    return 2;
  }
  const std::string policy_name = args.get_string_or("policy", "queue");
  const auto policy = service::parse_admission_policy(policy_name);
  if (!policy.ok()) {
    std::fprintf(stderr, "error: %s\n", policy.status().to_string().c_str());
    return 2;
  }

  service::ServiceOptions options;
  options.runners = runners;
  options.policy = *policy;
  options.sched = comm::default_sched_backend();  // sched= already applied
  options.sched_workers = 2;

  // ---- concurrent phase ----
  std::vector<service::SessionId> ids;
  const auto wall_start = std::chrono::steady_clock::now();
  service::SessionManager manager(options);
  for (int i = 0; i < sessions; ++i) {
    auto id = manager.submit(make_spec(i, tenants, ranks, grid, steps));
    if (!id.ok()) {
      std::fprintf(stderr, "submit %d failed: %s\n", i,
                   id.status().to_string().c_str());
      return 1;
    }
    ids.push_back(*id);
  }
  manager.wait_all();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  int completed = 0;
  double worst_p99 = 0.0;
  std::vector<service::SessionStatus> final_status;
  for (const service::SessionId id : ids) {
    auto status = manager.query(id);
    if (!status.ok() ||
        status->state != service::SessionState::kCompleted) {
      std::fprintf(stderr, "session %llu did not complete: %s\n",
                   static_cast<unsigned long long>(id),
                   status.ok() ? to_string(status->state)
                               : status.status().to_string().c_str());
      return 1;
    }
    ++completed;
    if (status->p99_step_seconds > worst_p99) {
      worst_p99 = status->p99_step_seconds;
    }
    final_status.push_back(std::move(*status));
  }

  // ---- solo identity gate ----
  // Every session re-runs alone, against fresh tenant state, and must
  // reproduce the concurrent run's per-rank virtual clocks exactly.
  int identity_checked = 0;
  for (int i = 0; i < sessions; ++i) {
    const service::SessionSpec spec =
        make_spec(i, tenants, ranks, grid, steps);
    pal::MemoryTracker solo_tracker;
    pal::BufferPool solo_pool;
    service::SessionRunContext context;
    context.tenant_label = spec.tenant;
    context.tenant_tracker = &solo_tracker;
    context.pool = &solo_pool;
    context.sched = options.sched;
    context.sched_workers = options.sched_workers;
    context.trace = obs.trace_enabled() && i < tenants;
    auto solo = service::run_session_pipeline(spec, context);
    if (!solo.ok()) {
      std::fprintf(stderr, "solo rerun %d failed: %s\n", i,
                   solo.status().to_string().c_str());
      return 1;
    }
    const std::vector<double>& concurrent =
        final_status[static_cast<std::size_t>(i)].rank_virtual_seconds;
    if (concurrent.size() != solo->report.ranks.size()) {
      std::fprintf(stderr, "identity: rank count mismatch on session %d\n",
                   i);
      return 1;
    }
    for (std::size_t r = 0; r < concurrent.size(); ++r) {
      if (concurrent[r] != solo->report.ranks[r].virtual_seconds) {
        std::fprintf(stderr,
                     "identity: session %d rank %zu diverged "
                     "(concurrent %.17g != solo %.17g)\n",
                     i, r, concurrent[r],
                     solo->report.ranks[r].virtual_seconds);
        return 1;
      }
    }
    ++identity_checked;
    // One traced solo run per tenant anchors the committed baseline.
    if (i < tenants) {
      obs.record("solo/" + spec.tenant + "/p" + std::to_string(spec.ranks),
                 solo->report);
    }
  }

  // ---- quota admission gate ----
  // A session whose estimate can never fit its quota must be turned away
  // (rejected, or degraded under policy=degrade once the tenant is over
  // committed) with a labeled admission metric — never an abort.
  service::SessionSpec greedy = make_spec(0, 1, ranks, 64, 1);
  greedy.tenant = "greedy";
  greedy.name = "greedy/overquota";
  greedy.quota_bytes = std::size_t{1} << 20;  // 1 MiB << 64^3 doubles
  const auto greedy_id = manager.submit(greedy);
  if (greedy_id.ok()) {
    std::fprintf(stderr, "quota gate: over-quota session was admitted\n");
    return 1;
  }
  const std::string rejected_key = obs::metric_key(
      "service.admission", {{"outcome", "rejected"}, {"tenant", "greedy"}});
  bool saw_rejection = false;
  for (const obs::MetricSample& sample : manager.metrics()) {
    if (sample.key == rejected_key && sample.value >= 1.0) {
      saw_rejection = true;
      break;
    }
  }
  if (!saw_rejection) {
    std::fprintf(stderr, "quota gate: no %s metric\n", rejected_key.c_str());
    return 1;
  }

  // ---- live telemetry phase ----
  // A second, smaller service run with a TelemetryHub attached. The
  // breach session passes admission (the estimate ignores analysis
  // config) but its autocorrelation windows allocate several MiB of
  // tracked history against a 1 MiB quota, so the runtime overage is
  // deterministic: service.quota.overage_runs fires the health rule,
  // the service dumps the flight recorder, and the rule's
  // action=degrade demotes the tenant's next session.
  const std::string live_path = args.get_string_or("live", "");
  if (!live_path.empty()) {
    const std::string dump_path = live_path + ".flight";
    pal::Config health;
    health.set("health.interval_ms",
               std::to_string(args.get_int_or("live_interval_ms", 5)));
    health.set("health.stream", live_path);
    health.set("health.dump", dump_path);
    health.set("health.rule.overage",
               "service.quota.overage_runs > 0 action=degrade");
    obs::live::TelemetryOptions live_options;
    if (const Status parsed =
            obs::live::parse_telemetry_config(health, live_options);
        !parsed.ok()) {
      std::fprintf(stderr, "live: %s\n", parsed.to_string().c_str());
      return 2;
    }
    obs::live::TelemetryHub hub(live_options);
    if (const Status started = hub.start(); !started.ok()) {
      std::fprintf(stderr, "live: %s\n", started.to_string().c_str());
      return 1;
    }

    comm::RunReport live_report;
    live_report.seed = 7;
    {
      service::ServiceOptions live_service = options;
      live_service.runners = 2;
      service::SessionManager live_manager(live_service);
      live_manager.attach_telemetry(&hub);

      service::SessionSpec breach = make_spec(0, 1, ranks, grid, 2);
      breach.tenant = "hog";
      breach.name = "hog/breach";
      breach.quota_bytes = std::size_t{1} << 20;  // 1 MiB
      breach.analyses.set("autocorrelation.enabled", "true");
      breach.analyses.set("autocorrelation.window", "64");
      breach.analyses.set("autocorrelation.k", "1");
      const auto breach_id = live_manager.submit(breach);
      if (!breach_id.ok()) {
        std::fprintf(stderr, "live: breach submit failed: %s\n",
                     breach_id.status().to_string().c_str());
        return 1;
      }
      auto breach_status = live_manager.wait(*breach_id);
      if (!breach_status.ok() ||
          breach_status->state != service::SessionState::kCompleted) {
        std::fprintf(stderr, "live: breach session did not complete\n");
        return 1;
      }
      // The overage counter is updated before wait() returns; a
      // synchronous tick makes the rule firing deterministic (the
      // per-(rule,key) edge latch keeps a double tick harmless).
      hub.tick_now();
      if (hub.alerts_fired() < 1) {
        std::fprintf(stderr, "live: quota breach fired no health alert\n");
        return 1;
      }
      const std::vector<std::string> degraded =
          live_manager.degrade_requested_tenants();
      if (std::find(degraded.begin(), degraded.end(), "hog") ==
          degraded.end()) {
        std::fprintf(stderr,
                     "live: action=degrade left no standing request\n");
        return 1;
      }
      service::SessionSpec after = make_spec(0, 1, ranks, grid, 2);
      after.tenant = "hog";
      after.name = "hog/after-breach";
      const auto after_id = live_manager.submit(after);
      if (!after_id.ok()) {
        std::fprintf(stderr, "live: post-breach submit failed\n");
        return 1;
      }
      auto after_status = live_manager.wait(*after_id);
      if (!after_status.ok() || !after_status->degraded) {
        std::fprintf(stderr,
                     "live: post-breach session was not degraded\n");
        return 1;
      }
      live_manager.wait_all();
      live_report.metrics = live_manager.metrics();
    }  // manager dtor joins runners: the quota-breach dump is on disk
    hub.stop();  // final frame

    if (hub.flight_dumps() < 1) {
      std::fprintf(stderr, "live: no flight-recorder dump was written\n");
      return 1;
    }
    std::ifstream dump(dump_path);
    std::string dump_head;
    std::getline(dump, dump_head);
    if (dump_head.rfind("# insitu-flight/1", 0) != 0) {
      std::fprintf(stderr, "live: dump %s missing insitu-flight/1 header\n",
                   dump_path.c_str());
      return 1;
    }
    std::ifstream stream(live_path);
    std::string line;
    std::string last;
    std::size_t frames = 0;
    while (std::getline(stream, line)) {
      if (!line.empty()) {
        ++frames;
        last = line;
      }
    }
    if (frames < 1 || last.find("\"final\":true") == std::string::npos) {
      std::fprintf(stderr, "live: stream %s has no final frame\n",
                   live_path.c_str());
      return 1;
    }
    // Hub self-accounting + alert counters ride along in the recorded
    // metrics so --metrics dumps (and CI greps) see obs.health.alert.
    obs::merge_into(live_report.metrics, hub.hub_metrics());
    obs.record("live/breach", live_report);
    std::printf(
        "live: %zu frame(s) -> %s, %llu alert(s), %llu dump(s) -> %s, "
        "hub busy %.6fs\n",
        frames, live_path.c_str(),
        static_cast<unsigned long long>(hub.alerts_fired()),
        static_cast<unsigned long long>(hub.flight_dumps()),
        dump_path.c_str(), hub.busy_seconds());
  }

  // ---- report ----
  std::printf(
      "service_throughput: %d sessions x %d tenants, %d runners, "
      "policy=%s\n",
      sessions, tenants, runners, to_string(options.policy));
  std::printf("%-8s %10s %10s %14s %12s\n", "tenant", "sessions", "steps",
              "p99 step ms", "HW MiB");
  for (int t = 0; t < tenants; ++t) {
    const std::string tenant = "t" + std::to_string(t);
    int count = 0;
    long tenant_steps = 0;
    double p99 = 0.0;
    for (const service::SessionStatus& status : final_status) {
      if (status.tenant != tenant) continue;
      ++count;
      tenant_steps += status.steps_executed;
      if (status.p99_step_seconds > p99) p99 = status.p99_step_seconds;
    }
    const auto info = manager.tenant(tenant);
    std::printf("%-8s %10d %10ld %14.3f %12.3f\n", tenant.c_str(), count,
                tenant_steps, p99 * 1000.0,
                info.ok() ? static_cast<double>(info->high_water_bytes) /
                                (1024.0 * 1024.0)
                          : 0.0);
  }
  std::printf(
      "completed %d/%d sessions in %.2fs wall (%.1f sessions/s), "
      "identity-checked %d, worst p99 step %.3f ms\n",
      completed, sessions, wall_seconds,
      wall_seconds > 0.0 ? completed / wall_seconds : 0.0, identity_checked,
      worst_p99 * 1000.0);

  // The service-wide metrics snapshot (admission outcomes, per-tenant
  // series, merged session metrics) is its own recorded "run" so
  // --metrics dumps feed perf_report's tenant table.
  comm::RunReport service_report;
  service_report.seed = 7;
  service_report.metrics = manager.metrics();
  obs.record("service/n" + std::to_string(sessions), service_report);

  return obs.finish();
}

}  // namespace
}  // namespace insitu::bench

int main(int argc, char** argv) { return insitu::bench::run(argc, argv); }
