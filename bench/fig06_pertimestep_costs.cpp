// Reproduces Fig 6: per-timestep recurring costs — "simulation" vs
// "analysis" — for the miniapp in situ configurations, weak scaling.
//
// Paper findings: the oscillator simulation weak-scales nearly perfectly;
// analysis cost is negligible for histogram/autocorrelation and dominated
// by compositing for the two slice-render configurations (Catalyst at
// 1920x1080, Libsim at 1600x1600; different compositing algorithms with
// visibly different scaling).

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

void executed_table() {
  pal::TablePrinter table("Fig 6 (executed): per-timestep costs");
  table.set_header({"ranks", "config", "simulation (s/step)",
                    "analysis (s/step)"});
  const MiniappConfig configs[] = {
      MiniappConfig::kBaseline, MiniappConfig::kHistogram,
      MiniappConfig::kAutocorrelation, MiniappConfig::kCatalystSlice,
      MiniappConfig::kLibsimSlice};
  for (const int p : executed_ranks()) {
    for (const MiniappConfig config : configs) {
      MiniappBenchParams params;
      params.ranks = p;
      const RunResult r = run_miniapp_config(config, params);
      table.add_row({std::to_string(p), to_string(config),
                     pal::TablePrinter::num(r.per_step_sim, 6),
                     pal::TablePrinter::num(r.per_step_analysis, 6)});
    }
  }
  table.print();
}

void paper_scale_table() {
  const comm::MachineModel cori = comm::cori_haswell();
  pal::TablePrinter table("Fig 6 (paper-scale model): per-timestep costs");
  table.set_header({"cores", "simulation", "histogram", "autocorr",
                    "Catalyst-slice", "Libsim-slice"});
  for (const auto& scale : paper_scales()) {
    table.add_row(
        {std::to_string(scale.ranks),
         pal::TablePrinter::num(perfmodel::sim_step_seconds(cori, scale), 4),
         pal::TablePrinter::num(
             perfmodel::histogram_step_seconds(cori, scale, 64), 4),
         pal::TablePrinter::num(
             perfmodel::autocorrelation_step_seconds(cori, scale, 10), 4),
         pal::TablePrinter::num(
             perfmodel::slice_render_step_seconds(
                 cori, scale, 1920ll * 1080, /*tree=*/true, true),
             4),
         pal::TablePrinter::num(
             perfmodel::slice_render_step_seconds(
                 cori, scale, 1600ll * 1600, /*tree=*/false, true),
             4)});
  }
  table.add_note(
      "simulation weak-scales flat; slice configs pay image-sized "
      "compositing that grows ~log(P)");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 6 — per-timestep in situ costs ===\n");
  executed_table();
  paper_scale_table();
  return obs.finish();
}
