// Reproduces Table 2: PHASTA + SENSEI/Catalyst on Mira.
//
//   Run  One-Time  In Situ/Step  Total   %InSitu
//   IS1  1.76      1.40          1051    8.2     (800x200 image)
//   IS2  1.07      5.24          962     33      (2900x725 image)
//   IS3  1.93      5.62          653     13      (6.33B elements, 1M ranks)
//
// Plus the §4.2.1 root-cause experiment: on an 8-process toy problem the
// in situ step drops from 4.03 s to 0.518 s when PNG compression is
// skipped — the serial rank-0 zlib encode dominates large images.

#include <cstdio>

#include "backends/catalyst.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "pal/table.hpp"
#include "perfmodel/paper_model.hpp"
#include "proxy/phasta.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

void paper_scale_table() {
  const comm::MachineModel mira = comm::mira_bgq();
  pal::TablePrinter table("Table 2 (paper-scale model): PHASTA on Mira");
  table.set_header({"run", "one-time (s)", "paper", "in situ/step (s)",
                    "paper", "total (s)", "paper", "% in situ"});
  struct Row {
    const char* name;
    perfmodel::PhastaScale scale;
    double paper_onetime, paper_step, paper_total, paper_pct;
  };
  const Row rows[] = {
      {"IS1", perfmodel::phasta_is1(), 1.76, 1.40, 1051, 8.2},
      {"IS2", perfmodel::phasta_is2(), 1.07, 5.24, 962, 33},
      {"IS3", perfmodel::phasta_is3(), 1.93, 5.62, 653, 13},
  };
  for (const Row& row : rows) {
    const double onetime =
        perfmodel::phasta_insitu_onetime_seconds(mira, row.scale);
    const double step =
        perfmodel::phasta_insitu_step_seconds(mira, row.scale, true);
    const double solver =
        perfmodel::phasta_solver_step_seconds(mira, row.scale);
    const int rendered = row.scale.steps / row.scale.render_every;
    const double total =
        row.scale.steps * solver + rendered * step + onetime;
    const double pct = 100.0 * (rendered * step + onetime) / total;
    table.add_row({row.name, pal::TablePrinter::num(onetime, 2),
                   pal::TablePrinter::num(row.paper_onetime, 2),
                   pal::TablePrinter::num(step, 2),
                   pal::TablePrinter::num(row.paper_step, 2),
                   pal::TablePrinter::num(total, 0),
                   pal::TablePrinter::num(row.paper_total, 0),
                   pal::TablePrinter::num(pct, 1)});
  }
  table.add_note("IS2 step >> IS1 step: image size (PNG encode), not scale");
  table.add_note("IS2 vs IS3 step nearly equal despite 4x ranks/5x elements");
  table.print();

  pal::TablePrinter sizes("§4.2.1: executable size with Catalyst Edition");
  sizes.set_header({"link", "size"});
  sizes.add_row({"PHASTA + SENSEI + Catalyst (static, rendering edition)",
                 pal::TablePrinter::bytes(static_cast<double>(
                     backends::edition_executable_bytes(
                         backends::CatalystEdition::kRenderingBase)))});
  sizes.add_note("paper: 153 MB static / 87 MB dynamic");
  sizes.print();
}

/// Executed PHASTA weak scaling: the IS-run pipeline (solver proxy +
/// Catalyst slice + compositing) really runs at each requested rank
/// count — `ranks=10240 sched=mn` executes the full control flow at
/// paper-adjacent scale on one machine (docs/SCALING.md). Cells per rank
/// stay constant (weak scaling) and the image stays small so the cost is
/// dominated by the rank-level structure, not pixel work.
void executed_weak_scaling() {
  bench::ObsSession* obs = bench::ObsSession::current();
  pal::TablePrinter table(
      "Table 2 (executed): PHASTA proxy weak scaling, Catalyst slice");
  table.set_header({"ranks", "one-time (s)", "in situ/step (s)",
                    "total (s)"});
  for (const int p : bench::executed_ranks()) {
    double onetime = 0.0;
    double step_cost = 0.0;
    comm::Runtime::Options options;
    options.machine = comm::mira_bgq();
    options.seed = 7;
    options.observe.trace = obs != nullptr && obs->trace_enabled();
    if (obs != nullptr) options.sched.workers = obs->sched_workers();
    const comm::RunReport report =
        comm::Runtime::run(p, options, [&](comm::Communicator& comm) {
          proxy::PhastaConfig cfg;
          cfg.cells_per_rank = {4, 4, 4};
          proxy::PhastaSim sim(comm, cfg);
          sim.initialize();
          proxy::PhastaDataAdaptor adaptor(sim);
          backends::CatalystSliceConfig cs;
          cs.array = "velocity_magnitude";
          cs.image_width = 180;
          cs.image_height = 45;
          cs.scalar_min = 0.0;
          cs.scalar_max = 2.0;
          cs.compress_png = false;
          core::InSituBridge bridge(&comm);
          bridge.add_analysis(std::make_shared<backends::CatalystSlice>(cs));
          (void)bridge.initialize();
          for (long s = 0; s < 2; ++s) {
            sim.step();
            (void)bridge.execute(adaptor, sim.time(), s);
          }
          (void)bridge.finalize();
          if (comm.rank() == 0) {
            onetime = bridge.timings().initialize_seconds;
            step_cost = bridge.timings().analysis_per_step.mean();
          }
        });
    table.add_row({std::to_string(p), pal::TablePrinter::num(onetime, 3),
                   pal::TablePrinter::num(step_cost, 3),
                   pal::TablePrinter::num(report.max_virtual_seconds(), 2)});
    if (obs != nullptr) {
      obs->record("phasta-executed/p" + std::to_string(p), report);
    }
  }
  table.add_note("per-rank work constant; structure (collectives, "
                 "compositing ladder) really executes at each rank count");
  table.print();
}

void toy_compression_ablation() {
  // The 8-process toy problem, executed for real: same pipeline, PNG
  // compression on vs off, on the Mira machine model.
  pal::TablePrinter table(
      "§4.2.1 (executed, 8 ranks): PNG compression ablation");
  table.set_header({"png compression", "in situ/step (s)", "paper"});
  for (const bool compress : {true, false}) {
    double step_cost = 0.0;
    comm::Runtime::Options options;
    options.machine = comm::mira_bgq();
    comm::Runtime::run(8, options, [&](comm::Communicator& comm) {
      proxy::PhastaConfig cfg;
      cfg.cells_per_rank = {6, 6, 6};
      proxy::PhastaSim sim(comm, cfg);
      sim.initialize();
      proxy::PhastaDataAdaptor adaptor(sim);
      backends::CatalystSliceConfig cs;
      cs.array = "velocity_magnitude";
      cs.image_width = 2900 / 4;  // toy-size images, full-size shape
      cs.image_height = 725 / 4;
      cs.scalar_min = 0.0;
      cs.scalar_max = 2.0;
      cs.compress_png = compress;
      auto slice = std::make_shared<backends::CatalystSlice>(cs);
      core::InSituBridge bridge(&comm);
      bridge.add_analysis(slice);
      (void)bridge.initialize();
      for (long s = 0; s < 3; ++s) {
        sim.step();
        (void)bridge.execute(adaptor, sim.time(), s);
      }
      if (comm.rank() == 0) {
        step_cost = bridge.timings().analysis_per_step.mean();
      }
    });
    table.add_row({compress ? "on" : "off",
                   pal::TablePrinter::num(step_cost, 4),
                   compress ? "4.03 s" : "0.518 s"});
  }
  table.add_note("serial DEFLATE on rank 0 dominates when enabled");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: Table 2 — PHASTA at up to 1M ranks (Mira) ===\n");
  paper_scale_table();
  executed_weak_scaling();
  toy_compression_ablation();
  return obs.finish();
}
