// Ablation: zero-copy adaptor arrays vs deep-copied arrays — the design
// choice §3.2 exists to enable ("mapping data arrays from application
// codes to the VTK data model without additional memory copying").
//
// Measures both the per-step time and the per-rank memory cost of copying
// a miniapp-sized array every in situ invocation.

#include <cstdio>

#include "comm/runtime.hpp"
#include "data/image_data.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/table.hpp"
#include "pal/timer.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

/// A deliberately naive adaptor that deep-copies the simulation buffer
/// every step (what instrumentation without the enhanced array layouts
/// would have to do).
class DeepCopyAdaptor final : public core::DataAdaptor {
 public:
  explicit DeepCopyAdaptor(miniapp::OscillatorSim& sim) : sim_(&sim) {}

  StatusOr<data::MultiBlockPtr> mesh(bool) override {
    if (cached_ == nullptr) {
      cached_ = std::make_shared<data::MultiBlockDataSet>(
          communicator()->size());
      cached_->add_block(communicator()->rank(), sim_->make_grid());
    }
    return cached_;
  }

  Status add_array(data::MultiBlockDataSet& mesh, data::Association assoc,
                   const std::string& name) override {
    if (assoc != data::Association::kPoint || name != "data") {
      return Status::NotFound("no array " + name);
    }
    auto copy =
        data::DataArray::create<double>("data", sim_->local_points(), 1);
    std::memcpy(copy->component_base<double>(0), sim_->values().data(),
                sim_->values().size() * sizeof(double));
    communicator()->advance_compute(communicator()->machine().memcpy_time(
        sim_->values().size() * sizeof(double)));
    mesh.block(0)->point_fields().add(copy);
    return Status::Ok();
  }

  std::vector<std::string> available_arrays(
      data::Association assoc) const override {
    return assoc == data::Association::kPoint
               ? std::vector<std::string>{"data"}
               : std::vector<std::string>{};
  }

  Status release_data() override {
    cached_.reset();
    return Status::Ok();
  }

 private:
  miniapp::OscillatorSim* sim_;
  data::MultiBlockPtr cached_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: ablation — zero-copy vs deep-copy adaptor ===\n");
  pal::TablePrinter table("Zero-copy ablation (executed, 4 ranks)");
  table.set_header({"adaptor", "access/step (s)", "memory HWM (sum)"});

  for (const bool zero_copy : {true, false}) {
    double per_step = 0.0;
    const comm::Runtime::Options options = bench::ablation_options();
    comm::RunReport report = comm::Runtime::run(
        4, options, [&](comm::Communicator& comm) {
          miniapp::OscillatorSim sim(
              comm, bench::ablation_oscillator_config(32, 6.0));
          sim.initialize();
          std::unique_ptr<core::DataAdaptor> adaptor;
          if (zero_copy) {
            adaptor = std::make_unique<miniapp::OscillatorDataAdaptor>(sim);
          } else {
            adaptor = std::make_unique<DeepCopyAdaptor>(sim);
          }
          adaptor->set_communicator(&comm);
          pal::PhaseTimer access;
          for (int s = 0; s < 10; ++s) {
            sim.step();
            const double t0 = comm.clock().now();
            auto mesh = adaptor->full_mesh();
            if (!mesh.ok()) return;
            // Touch the array the way an analysis would.
            auto array = (*mesh)->block(0)->point_fields().get("data");
            volatile double sink = array->get(0);
            (void)sink;
            (void)adaptor->release_data();
            access.add(comm.clock().now() - t0);
          }
          if (comm.rank() == 0) per_step = access.mean();
        });
    table.add_row(
        {zero_copy ? "zero-copy (SENSEI)" : "deep-copy",
         pal::TablePrinter::num(per_step, 7),
         pal::TablePrinter::bytes(
             static_cast<double>(report.total_high_water_bytes()))});
  }
  table.add_note("paper §4.1.2: zero-copy shows no measurable overhead");
  table.print();
  return obs.finish();
}
