// Reproduces Table 1 (one-timestep write cost: multi-file "VTK I/O" vs
// collective "MPI-IO" at 812/6496/45440 cores writing 2/16/123 GB) and
// Fig 10 (Baseline vs Baseline+I/O per-step breakdown over 100 steps).
//
// Paper findings: file-per-rank I/O beats vanilla collective MPI-IO at all
// three scales; at 45K the write takes ~20x the simulation step.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "io/writers.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

void table1() {
  const comm::MachineModel cori = comm::cori_haswell();
  const io::LustreModel fs(cori.fs);
  pal::TablePrinter table(
      "Table 1 (paper-scale model): one-timestep write costs on Cori");
  table.set_header({"writes", "size", "VTK I/O (model)", "paper",
                    "MPI-IO (model)", "paper"});
  struct Row {
    perfmodel::MiniappScale scale;
    const char* size;
    const char* paper_vtk;
    const char* paper_mpiio;
  };
  const Row rows[] = {
      {perfmodel::cori_1k(), "2 GB", "0.12 s", "0.40 s"},
      {perfmodel::cori_6k(), "16 GB", "0.67 s", "3.17 s"},
      {perfmodel::cori_45k(), "123 GB", "9.05 s", "22.87 s"},
  };
  for (const Row& row : rows) {
    table.add_row(
        {std::to_string(row.scale.ranks), row.size,
         pal::TablePrinter::num(
             perfmodel::posthoc_write_seconds(fs, row.scale), 2) + " s",
         row.paper_vtk,
         pal::TablePrinter::num(
             perfmodel::posthoc_collective_write_seconds(
                 fs, row.scale, cori.fs.default_stripe_count),
             2) + " s",
         row.paper_mpiio});
  }
  table.add_note("MPI-IO = vanilla collective subarray write, NERSC striping");
  table.print();
}

void fig10_executed() {
  const std::string dir = "/tmp/insitu_bench_fig10";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  pal::TablePrinter table(
      "Fig 10 (executed): Baseline vs Baseline+I/O per-step breakdown");
  table.set_header({"ranks", "config", "init (s)", "sim/step (s)",
                    "write/step (s)", "finalize (s)"});
  for (const int p : executed_ranks()) {
    // Baseline without I/O.
    MiniappBenchParams params;
    params.ranks = p;
    const RunResult base = run_miniapp_config(MiniappConfig::kBaseline, params);
    table.add_row({std::to_string(p), "Baseline",
                   pal::TablePrinter::num(base.sim_init, 5),
                   pal::TablePrinter::num(base.per_step_sim, 6), "0",
                   pal::TablePrinter::num(base.finalize, 6)});

    // Baseline + per-step file-per-rank writes (real files).
    double write_per_step = 0.0, sim_per_step = 0.0, init = 0.0;
    comm::Runtime::Options options;
    options.machine = comm::cori_haswell();
    comm::Runtime::run(p, options, [&](comm::Communicator& comm) {
      const double t0 = comm.clock().now();
      miniapp::OscillatorConfig cfg;
      cfg.global_cells = {16, 16, 16};
      cfg.oscillators = {{miniapp::Oscillator::Kind::kPeriodic,
                          {8, 8, 8}, 3.0, 2.0 * M_PI, 0.0}};
      miniapp::OscillatorSim sim(comm, cfg);
      sim.initialize();
      const double t_init = comm.clock().now() - t0;
      miniapp::OscillatorDataAdaptor adaptor(sim);
      adaptor.set_communicator(&comm);
      io::VtkMultiFileWriter writer(dir, io::LustreModel(comm.machine().fs));
      pal::PhaseTimer sim_t, write_t;
      for (int s = 0; s < 10; ++s) {
        const double ts = comm.clock().now();
        sim.step();
        sim_t.add(comm.clock().now() - ts);
        auto mesh = adaptor.full_mesh();
        const double tw = comm.clock().now();
        (void)writer.write_step(comm, **mesh, s);
        write_t.add(comm.clock().now() - tw);
        (void)adaptor.release_data();
      }
      if (comm.rank() == 0) {
        init = t_init;
        sim_per_step = sim_t.mean();
        write_per_step = write_t.mean();
      }
    });
    table.add_row({std::to_string(p), "Baseline+I/O",
                   pal::TablePrinter::num(init, 5),
                   pal::TablePrinter::num(sim_per_step, 6),
                   pal::TablePrinter::num(write_per_step, 6), "~0"});
  }
  table.print();
  std::filesystem::remove_all(dir);
}

void fig10_paper_scale() {
  const comm::MachineModel cori = comm::cori_haswell();
  const io::LustreModel fs(cori.fs);
  pal::TablePrinter table(
      "Fig 10 (paper-scale model): write cost vs simulation step");
  table.set_header({"cores", "sim/step (s)", "write/step (s)", "write/sim"});
  for (const auto& scale : paper_scales()) {
    const double sim = perfmodel::sim_step_seconds(cori, scale);
    const double write = perfmodel::posthoc_write_seconds(fs, scale);
    table.add_row({std::to_string(scale.ranks),
                   pal::TablePrinter::num(sim, 3),
                   pal::TablePrinter::num(write, 3),
                   pal::TablePrinter::num(write / sim, 1) + "x"});
  }
  table.add_note("paper: writes ~4x sim at 6K and ~20x at 45K");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: Table 1 & Fig 10 — the cost of writes ===\n");
  table1();
  fig10_executed();
  fig10_paper_scale();
  return obs.finish();
}
