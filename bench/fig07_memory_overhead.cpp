// Reproduces Fig 7: memory overhead — startup footprint vs run high-water
// mark (summed over ranks, the paper's metric) per miniapp configuration.
//
// Paper findings: startup footprint ~ the Baseline for every
// configuration; the high-water mark varies with the analysis (largest
// for autocorrelation's 2*O(t N^3) buffers and the slice configs' image
// buffers) and grows with scale since it is summed over ranks.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

void executed_table() {
  pal::TablePrinter table(
      "Fig 7 (executed): startup vs high-water tracked memory (sum)");
  table.set_header({"ranks", "config", "startup", "high-water", "HWM/startup"});
  const MiniappConfig configs[] = {
      MiniappConfig::kBaseline, MiniappConfig::kHistogram,
      MiniappConfig::kAutocorrelation, MiniappConfig::kCatalystSlice,
      MiniappConfig::kLibsimSlice};
  for (const int p : executed_ranks()) {
    for (const MiniappConfig config : configs) {
      MiniappBenchParams params;
      params.ranks = p;
      const RunResult r = run_miniapp_config(config, params);
      const double ratio =
          r.mem_startup > 0
              ? static_cast<double>(r.mem_high_water) / r.mem_startup
              : 0.0;
      table.add_row(
          {std::to_string(p), to_string(config),
           pal::TablePrinter::bytes(static_cast<double>(r.mem_startup)),
           pal::TablePrinter::bytes(static_cast<double>(r.mem_high_water)),
           pal::TablePrinter::num(ratio, 2) + "x"});
    }
  }
  table.add_note("startup = simulation grid only; identical across configs");
  table.print();
}

void paper_scale_table() {
  pal::TablePrinter table("Fig 7 (paper-scale model): per-rank components");
  table.set_header({"cores", "grid/rank", "autocorr buffers/rank",
                    "image buffers/rank (Catalyst)"});
  for (const auto& scale : paper_scales()) {
    const double grid = static_cast<double>(scale.points_per_rank) * 8.0;
    const double autocorr = 2.0 * 10.0 * grid;
    const double image = 1920.0 * 1080 * (4 + 4);  // color + depth
    table.add_row({std::to_string(scale.ranks),
                   pal::TablePrinter::bytes(grid),
                   pal::TablePrinter::bytes(autocorr),
                   pal::TablePrinter::bytes(image)});
  }
  table.add_note("summed-over-ranks HWM grows linearly with scale (Fig 7)");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 7 — memory overhead ===\n");
  executed_table();
  paper_scale_table();
  return obs.finish();
}
