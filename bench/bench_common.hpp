#pragma once

// Shared harness for the per-figure bench binaries.
//
// Every bench prints two kinds of rows (DESIGN.md §2):
//  * EXECUTED rows: the full pipeline really runs on N rank-threads with
//    real (small) data; times are the deterministic virtual clock.
//  * PAPER-SCALE rows: the same cost functions evaluated analytically at
//    the paper's rank counts and workloads (src/perfmodel).

#include <cmath>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/autocorrelation.hpp"
#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "backends/libsim.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "kernels/kernels.hpp"
#include "miniapp/adaptor.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics_io.hpp"
#include "pal/buffer_pool.hpp"
#include "pal/table.hpp"
#include "perfmodel/paper_model.hpp"

namespace insitu::bench {

/// Per-binary observability sink. Construct once at the top of main();
/// it parses `--trace out.json` / `--metrics out.csv` (or `.json`) /
/// `--baseline out.json` from the command line and installs itself as the
/// process-wide session. run_miniapp_config() records every executed run
/// into the current session under the label "<config>/p<ranks>"; binaries
/// that drive comm::Runtime directly call record() themselves. finish()
/// writes the requested files and returns a process exit code
/// contribution (0 = ok).
///
/// `--baseline <path>` distills the recorded traces into a perf baseline
/// (schema insitu-bench-baseline/1, see docs/PERFORMANCE.md) that
/// `tools/perf_report --check` gates against. Trace and metrics exports
/// carry a run-metadata header (tool, full config string, threads, seed)
/// so perf_report output is self-describing.
///
/// When no flag is given the session is inert: tracing stays off in
/// Runtime::Options (so instrumented runs cost nothing beyond the atomic
/// metric updates) and finish() writes nothing.
class ObsSession {
 public:
  ObsSession(int argc, const char* const* argv);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// The installed session, or nullptr outside an ObsSession's lifetime.
  static ObsSession* current();

  /// Baselines are derived from traces, so --baseline implies tracing.
  bool trace_enabled() const {
    return !trace_path_.empty() || !baseline_path_.empty();
  }
  bool metrics_enabled() const { return !metrics_path_.empty(); }
  bool baseline_enabled() const { return !baseline_path_.empty(); }
  /// Kernel threads requested via `threads=N` / `--threads N` (>= 1).
  int threads() const { return threads_; }
  /// Kernel-dispatch variant requested via `kernels=NAME` /
  /// `--kernels NAME`; empty when running the process default.
  const std::string& kernels_variant() const { return kernels_; }
  /// Scheduler backend requested via `sched=NAME` / `--sched NAME`;
  /// empty when running the process default (INSITU_SCHED or threads).
  /// An explicit request also becomes the process default, so every
  /// Runtime::Options constructed afterwards picks it up.
  const std::string& sched_backend_name() const { return sched_; }
  /// Carrier workers for the mn backend (`sched_workers=N`); 0 = one per
  /// hardware thread.
  int sched_workers() const { return sched_workers_; }
  /// Collective engine requested via `coll=NAME` / `--coll NAME`; empty
  /// when running the process default (INSITU_COLL or tree). An explicit
  /// request also becomes the process default, like `sched=`.
  const std::string& coll_engine_name() const { return coll_; }
  /// Combining-tree arity requested via `coll_arity=N`; 0 when running
  /// the process default (INSITU_COLL_ARITY or 64).
  int coll_arity() const { return coll_arity_; }
  /// Executed rank counts requested via `ranks=N[,M...]` / `--ranks ...`;
  /// empty when the bench should use its own defaults. Values are
  /// validated at parse time (positive, no overflow) — an invalid list
  /// exits the process with a clear error rather than silently clamping.
  const std::vector<int>& ranks_override() const { return ranks_; }

  /// Capture one run's trace + metrics under `label`.
  void record(const std::string& label, const comm::RunReport& report);

  const std::vector<obs::TraceRun>& traces() const { return traces_; }
  const std::vector<obs::MetricsRun>& metrics_runs() const {
    return metrics_;
  }
  /// Metadata stamped into every export (tool, config, threads, seed).
  obs::ExportMeta export_meta() const;

  /// Write the requested trace/metrics/baseline files. Returns 0 on
  /// success.
  int finish();

 private:
  std::string tool_;
  std::string config_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string baseline_path_;
  std::vector<obs::TraceRun> traces_;
  std::vector<obs::MetricsRun> metrics_;
  std::vector<std::uint64_t> seeds_;  ///< per recorded trace run
  /// Per recorded trace run: buffer-pool counter deltas between record()
  /// calls, distilled into the baseline's optional "pool" block.
  std::vector<pal::BufferPoolStats> pool_runs_;
  pal::BufferPoolStats pool_last_;
  /// Per recorded trace run: kernel-dispatch counter deltas between
  /// record() calls, distilled into the baseline's optional "kernels"
  /// block.
  std::vector<kernels::StatsSnapshot> kernels_runs_;
  kernels::StatsSnapshot kernels_last_;
  std::string kernels_;  ///< requested dispatch variant ("" = default)
  std::string sched_;    ///< requested scheduler backend ("" = default)
  int sched_workers_ = 0;
  std::string coll_;     ///< requested collective engine ("" = default)
  int coll_arity_ = 0;   ///< requested combining-tree arity (0 = default)
  std::vector<int> ranks_;  ///< executed-rank override (empty = default)
  int threads_ = 1;
  bool finished_ = false;
};

/// Parse a comma-separated list of executed rank counts ("8" or
/// "4,8,16"). Every element must be a positive integer that fits an int;
/// empty elements, trailing garbage, zero, negatives, and overflow all
/// fail with a message in *error. Used by the `ranks=`/`--ranks` flag and
/// covered by tests/sched_test.
std::optional<std::vector<int>> parse_ranks_list(std::string_view text,
                                                 std::string* error);

/// The miniapp in situ configurations of §4.1.1.
enum class MiniappConfig {
  kOriginal,         // no SENSEI; analysis (if any) by subroutine call
  kBaseline,         // SENSEI enabled, no analysis
  kHistogram,        // SENSEI -> histogram (no infrastructure)
  kAutocorrelation,  // SENSEI -> autocorrelation (no infrastructure)
  kCatalystSlice,    // SENSEI -> Catalyst-like slice render
  kLibsimSlice,      // SENSEI -> Libsim-like slice render
};

inline const char* to_string(MiniappConfig config) {
  switch (config) {
    case MiniappConfig::kOriginal: return "Original";
    case MiniappConfig::kBaseline: return "Baseline";
    case MiniappConfig::kHistogram: return "Histogram";
    case MiniappConfig::kAutocorrelation: return "Autocorrelation";
    case MiniappConfig::kCatalystSlice: return "Catalyst-slice";
    case MiniappConfig::kLibsimSlice: return "Libsim-slice";
  }
  return "?";
}

struct RunResult {
  int ranks = 0;
  double sim_init = 0.0;
  double analysis_init = 0.0;
  double per_step_sim = 0.0;       // mean, virtual seconds
  double per_step_analysis = 0.0;  // mean, virtual seconds
  double finalize = 0.0;
  double total = 0.0;              // job virtual time-to-solution
  std::size_t mem_startup = 0;     // tracked bytes after sim init (sum)
  std::size_t mem_high_water = 0;  // tracked bytes HWM (sum over ranks)
};

struct MiniappBenchParams {
  int ranks = 8;
  std::int64_t cells_per_axis = 16;  // executed global grid
  int steps = 10;
  int histogram_bins = 64;
  int window = 10;
  int top_k = 3;
  int image_w = 256;
  int image_h = 144;
  comm::MachineModel machine = comm::cori_haswell();
};

/// Run one miniapp configuration end-to-end at executed scale.
RunResult run_miniapp_config(MiniappConfig config,
                             const MiniappBenchParams& params);

/// Standard ablation-bench Runtime options: Cori Haswell machine,
/// seed 7, tracing wired to the current ObsSession (off when no session
/// is installed or no --trace/--baseline flag was given).
comm::Runtime::Options ablation_options();

/// The standard single-source ablation workload: one periodic
/// oscillator (omega = 2*pi) of the given radius at the center of an
/// n^3 grid, dt = 0.05.
miniapp::OscillatorConfig ablation_oscillator_config(
    std::int64_t cells_per_axis, double radius);

/// Executed-scale rank counts for the weak-scaling tables: the session's
/// `ranks=` override when one was given, else {4, 8, 16}.
std::vector<int> executed_ranks();

/// Paper-scale specs (812 / 6496 / 45440 on Cori).
inline std::vector<perfmodel::MiniappScale> paper_scales() {
  return {perfmodel::cori_1k(), perfmodel::cori_6k(), perfmodel::cori_45k()};
}

}  // namespace insitu::bench
