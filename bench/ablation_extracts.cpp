// Ablation: the "explorable extracts" economy (§2.2.4). Quantifies, per
// grid size: (a) the byte ratio of a welded isosurface extract vs the
// full volume field, (b) the compressed bitmap-index footprint vs raw
// data, and (c) the in situ cost of feature tracking — the three
// reduced-output paths this repo adds on top of the paper's image-based
// pipelines.

#include <cmath>
#include <cstdio>

#include "analysis/bitmap_index.hpp"
#include "analysis/feature_tracking.hpp"
#include "backends/extracts.hpp"
#include "bench_common.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

void extract_reduction_table() {
  pal::TablePrinter table(
      "Extract ablation (executed, 4 ranks): isosurface extract vs volume");
  table.set_header({"grid", "volume bytes", "extract bytes", "reduction"});
  for (const std::int64_t n : {16, 32, 48}) {
    std::uint64_t extract_bytes = 0, field_bytes = 0;
    comm::Runtime::run(4, ablation_options(), [&](comm::Communicator& comm) {
      miniapp::OscillatorSim sim(
          comm, ablation_oscillator_config(n, static_cast<double>(n) / 4.0));
      sim.initialize();
      miniapp::OscillatorDataAdaptor adaptor(sim);
      backends::ExtractConfig ec;
      ec.kind = backends::ExtractConfig::Kind::kIsosurface;
      ec.value = 0.5;
      auto writer = std::make_shared<backends::ExtractWriter>(ec);
      core::InSituBridge bridge(&comm);
      bridge.add_analysis(writer);
      (void)bridge.initialize();
      (void)bridge.execute(adaptor, 0.0, 0);
      if (comm.rank() == 0) {
        extract_bytes = writer->last_extract_bytes();
        field_bytes = writer->last_field_bytes();
      }
    });
    table.add_row(
        {std::to_string(n) + "^3",
         pal::TablePrinter::bytes(static_cast<double>(field_bytes)),
         pal::TablePrinter::bytes(static_cast<double>(extract_bytes)),
         pal::TablePrinter::num(
             static_cast<double>(field_bytes) /
                 std::max<std::uint64_t>(extract_bytes, 1),
             1) + "x"});
  }
  table.add_note("extract bytes grow ~n^2 while volume grows n^3");
  table.print();
}

void index_footprint_table() {
  pal::TablePrinter table(
      "Index ablation (executed): WAH bitmap index footprint + query");
  table.set_header({"rows", "bins", "raw bytes", "index bytes",
                    "selective-count matches"});
  pal::Rng rng(17);
  for (const std::int64_t rows : {10000, 100000}) {
    for (const int bins : {16, 64}) {
      auto values = data::DataArray::create<double>("v", rows, 1);
      for (std::int64_t i = 0; i < rows; ++i) {
        values->set(i, 0, rng.next_gaussian());
      }
      auto index = analysis::BitmapIndex::build(*values, bins);
      if (!index.ok()) continue;
      // Count the 2-sigma tail through the index with candidate checks.
      const std::int64_t matches = index->count_range(*values, 2.0, 100.0);
      table.add_row(
          {std::to_string(rows), std::to_string(bins),
           pal::TablePrinter::bytes(static_cast<double>(rows) * 8),
           pal::TablePrinter::bytes(
               static_cast<double>(index->compressed_bytes())),
           std::to_string(matches) + " (" +
               pal::TablePrinter::num(100.0 * matches / rows, 2) + " %)"});
    }
  }
  table.add_note("gaussian data: ~2.3% expected above 2 sigma");
  table.print();
}

void tracking_cost_table() {
  pal::TablePrinter table(
      "Feature tracking ablation (executed, 4 ranks): cost per step");
  table.set_header({"grid", "tracking (virtual s/step)", "features"});
  for (const std::int64_t n : {24, 32}) {
    double per_step = 0.0;
    int features = 0;
    comm::Runtime::run(4, ablation_options(), [&](comm::Communicator& comm) {
      miniapp::OscillatorConfig cfg;
      cfg.global_cells = {n, n, n};
      cfg.oscillators = {
          {miniapp::Oscillator::Kind::kPeriodic,
           {n / 3.0, n / 2.0, n / 2.0}, n / 6.0, 2.0 * M_PI, 0.0},
          {miniapp::Oscillator::Kind::kDecaying,
           {2.0 * n / 3.0, n / 2.0, n / 2.0}, n / 6.0, 0.1, 0.0}};
      miniapp::OscillatorSim sim(comm, cfg);
      sim.initialize();
      miniapp::OscillatorDataAdaptor adaptor(sim);
      analysis::FeatureTrackerConfig tc;
      tc.threshold = 0.5;
      tc.merge_distance = static_cast<double>(n) / 6.0;
      auto tracker = std::make_shared<analysis::FeatureTracker>(tc);
      core::InSituBridge bridge(&comm);
      bridge.add_analysis(tracker);
      (void)bridge.initialize();
      for (long s = 0; s < 5; ++s) {
        (void)bridge.execute(adaptor, sim.time(), s);
        sim.step();
      }
      if (comm.rank() == 0) {
        per_step = bridge.timings().analysis_per_step.mean();
        features = static_cast<int>(tracker->history()[0].features.size());
      }
    });
    table.add_row({std::to_string(n) + "^3",
                   pal::TablePrinter::num(per_step, 6),
                   std::to_string(features)});
  }
  table.add_note("tracking is a single segmentation sweep + tiny gather");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: ablation — reduced outputs "
              "(extracts / index / tracking) ===\n");
  extract_reduction_table();
  index_footprint_table();
  tracking_cost_table();
  return obs.finish();
}
