// Ablation: live telemetry on/off (src/obs/live, docs/OBSERVABILITY.md).
//
// The TelemetryHub's contract is "always-on and invisible": sampling the
// rank registries mid-run must not change what any rank computes, and
// the sampling itself must stay a rounding error next to the pipeline.
// This bench runs the executed oscillator + histogram + Catalyst-slice
// workload under both scheduler backends with telemetry off and on, and
// gates:
//
//   1. bit-identical per-rank virtual clocks with the hub off vs on
//      (per backend, at every rank count),
//   2. hub overhead <= 2% of the telemetry-on arm's wall time
//      (busy_seconds() self-accounting vs measured wall),
//   3. a live stream with >= 1 frame and a final frame,
//   4. a seeded quota breach through the multi-tenant service (the
//      admission estimate ignores analysis config; autocorrelation
//      windows then allocate past a 1 MiB quota) firing >= 1
//      obs.health.alert and writing a parseable flight-recorder dump —
//      under sched=threads AND sched=mn.
//
// Exit codes: 0 ok, 1 gate failure, 2 usage error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "comm/runtime.hpp"
#include "comm/sched.hpp"
#include "core/bridge.hpp"
#include "miniapp/adaptor.hpp"
#include "obs/live/telemetry_hub.hpp"
#include "pal/table.hpp"
#include "service/session_manager.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

constexpr int kSteps = 20;
constexpr double kOverheadBudget = 0.02;  // hub busy / wall ceiling

struct Backend {
  const char* name;
  comm::SchedBackend backend;
};

constexpr Backend kBackends[] = {
    {"threads", comm::SchedBackend::kThreads},
    {"mn", comm::SchedBackend::kMn},
};

struct ArmResult {
  std::vector<double> rank_times;  ///< per-rank virtual seconds
  double total = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t frames = 0;
  double hub_busy = 0.0;
};

ArmResult run_arm(const Backend& backend, int ranks,
                  obs::live::TelemetryHub* hub, const std::string& label) {
  ArmResult result;
  bench::ObsSession* obs = bench::ObsSession::current();
  comm::Runtime::Options options = bench::ablation_options();
  options.sched.backend = backend.backend;
  options.observe.telemetry = hub;

  const auto wall0 = std::chrono::steady_clock::now();
  comm::RunReport report = comm::Runtime::run(
      ranks, options, [&](comm::Communicator& comm) {
        miniapp::OscillatorSim sim(comm,
                                   bench::ablation_oscillator_config(16, 3.0));
        sim.initialize();
        miniapp::OscillatorDataAdaptor adaptor(sim);

        auto hist = std::make_shared<analysis::HistogramAnalysis>(
            "data", data::Association::kPoint, 64);
        backends::CatalystSliceConfig cs;
        cs.image_width = 256;
        cs.image_height = 144;
        cs.scalar_min = -1.5;
        cs.scalar_max = 1.5;
        auto slice = std::make_shared<backends::CatalystSlice>(cs);

        core::InSituBridge bridge(&comm);
        bridge.add_analysis(hist);
        bridge.add_analysis(slice);
        (void)bridge.initialize();
        for (int s = 0; s < kSteps; ++s) {
          sim.step();
          (void)bridge.execute(adaptor, sim.time(), s);
        }
        (void)bridge.finalize();
      });
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
  result.total = report.max_virtual_seconds();
  result.rank_times.reserve(report.ranks.size());
  for (const comm::RankStats& r : report.ranks) {
    result.rank_times.push_back(r.virtual_seconds);
  }
  if (hub != nullptr) {
    result.frames = hub->frames_written();
    result.hub_busy = hub->busy_seconds();
  }
  if (obs != nullptr) obs->record(label, report);
  return result;
}

/// Count JSONL frames and check the last one is marked final.
bool stream_has_final_frame(const std::string& path, std::size_t* frames) {
  std::ifstream in(path);
  std::string line;
  std::string last;
  *frames = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++*frames;
    last = line;
  }
  return *frames > 0 && last.find("\"final\":true") != std::string::npos;
}

/// Quota-breach arm: run one over-allocating session through the service
/// with a hub + health rule attached; gate alert + parseable dump.
int run_breach_arm(const Backend& backend, const std::string& file_prefix) {
  const std::string stream_path = file_prefix + ".jsonl";
  const std::string dump_path = file_prefix + ".flight";
  std::remove(stream_path.c_str());
  std::remove(dump_path.c_str());

  pal::Config health;
  health.set("health.interval_ms", "5");
  health.set("health.stream", stream_path);
  health.set("health.dump", dump_path);
  health.set("health.rule.overage",
             "service.quota.overage_runs > 0 action=dump");
  obs::live::TelemetryOptions live_options;
  if (const Status parsed =
          obs::live::parse_telemetry_config(health, live_options);
      !parsed.ok()) {
    std::fprintf(stderr, "FAIL: [health] parse: %s\n",
                 parsed.to_string().c_str());
    return 1;
  }
  obs::live::TelemetryHub hub(live_options);
  if (const Status started = hub.start(); !started.ok()) {
    std::fprintf(stderr, "FAIL: hub start: %s\n",
                 started.to_string().c_str());
    return 1;
  }
  {
    service::ServiceOptions options;
    options.runners = 1;
    options.sched = backend.backend;
    options.sched_workers = 2;
    service::SessionManager manager(options);
    manager.attach_telemetry(&hub);

    service::SessionSpec breach;
    breach.tenant = "hog";
    breach.name = std::string("hog/breach-") + backend.name;
    breach.ranks = 2;
    breach.grid = 12;
    breach.steps = 2;
    breach.seed = 7;
    breach.quota_bytes = std::size_t{1} << 20;  // 1 MiB
    breach.analyses.set("autocorrelation.enabled", "true");
    breach.analyses.set("autocorrelation.window", "64");
    breach.analyses.set("autocorrelation.k", "1");
    const auto id = manager.submit(breach);
    if (!id.ok()) {
      std::fprintf(stderr, "FAIL: %s breach submit: %s\n", backend.name,
                   id.status().to_string().c_str());
      return 1;
    }
    const auto status = manager.wait(*id);
    if (!status.ok() ||
        status->state != service::SessionState::kCompleted) {
      std::fprintf(stderr, "FAIL: %s breach session did not complete\n",
                   backend.name);
      return 1;
    }
    hub.tick_now();  // deterministic rule firing (edge latch dedups)
  }  // manager dtor joins runners; the quota-breach dump is on disk
  hub.stop();

  if (hub.alerts_fired() < 1) {
    std::fprintf(stderr, "FAIL: %s quota breach fired no health alert\n",
                 backend.name);
    return 1;
  }
  if (hub.flight_dumps() < 1) {
    std::fprintf(stderr, "FAIL: %s breach produced no flight dump\n",
                 backend.name);
    return 1;
  }
  std::ifstream dump(dump_path);
  std::string head;
  std::getline(dump, head);
  if (head.rfind("# insitu-flight/1", 0) != 0) {
    std::fprintf(stderr, "FAIL: %s dump missing insitu-flight/1 header\n",
                 backend.name);
    return 1;
  }
  bool saw_ring = false;
  for (std::string line; std::getline(dump, line);) {
    if (line.rfind("== rank", 0) == 0) {
      saw_ring = true;
      break;
    }
  }
  if (!saw_ring) {
    std::fprintf(stderr, "FAIL: %s dump has no rank ring section\n",
                 backend.name);
    return 1;
  }
  std::size_t frames = 0;
  if (!stream_has_final_frame(stream_path, &frames)) {
    std::fprintf(stderr, "FAIL: %s breach stream has no final frame\n",
                 backend.name);
    return 1;
  }
  std::printf("breach/%s: alert fired, dump + %zu frame(s) ok\n",
              backend.name, frames);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  const pal::Config args = pal::Config::from_args(argc, argv);
  std::printf("=== bench: ablation — live telemetry on/off ===\n");
  int rc = 0;

  // Sanitizer CI raises the budget (overhead_budget=1): instrumentation
  // inflates the hub's CPU cost, and those runs gate races and
  // determinism, not performance.
  const double overhead_budget =
      args.get_double_or("overhead_budget", kOverheadBudget);

  std::vector<int> rank_counts = {4, 16};
  if (bench::ObsSession::current() != nullptr &&
      !bench::ObsSession::current()->ranks_override().empty()) {
    rank_counts = bench::ObsSession::current()->ranks_override();
  }

  pal::TablePrinter table(
      "Oscillator 16^3 + histogram + Catalyst slice (executed, " +
      std::to_string(kSteps) + " steps)");
  table.set_header({"ranks", "backend", "telemetry", "virt (s)", "wall (s)",
                    "frames", "hub busy (s)", "busy/wall"});

  for (const Backend& backend : kBackends) {
    for (const int ranks : rank_counts) {
      const std::string tag =
          std::string(backend.name) + "/p" + std::to_string(ranks);
      const ArmResult off =
          run_arm(backend, ranks, nullptr, "telemetry/off/" + tag);
      table.add_row({std::to_string(ranks), backend.name, "off",
                     pal::TablePrinter::num(off.total, 7),
                     pal::TablePrinter::num(off.wall_seconds, 3), "-", "-",
                     "-"});

      const std::string stream_path =
          "ablation_telemetry_" + std::string(backend.name) + "_p" +
          std::to_string(ranks) + ".jsonl";
      std::remove(stream_path.c_str());
      obs::live::TelemetryOptions live_options;
      live_options.interval_ms = 10;
      live_options.stream_path = stream_path;
      obs::live::TelemetryHub hub(live_options);
      if (const Status started = hub.start(); !started.ok()) {
        std::fprintf(stderr, "FAIL: hub start: %s\n",
                     started.to_string().c_str());
        return 1;
      }
      const ArmResult on =
          run_arm(backend, ranks, &hub, "telemetry/on/" + tag);
      hub.stop();
      const double ratio =
          on.wall_seconds > 0.0 ? hub.busy_seconds() / on.wall_seconds : 0.0;
      table.add_row({std::to_string(ranks), backend.name, "on",
                     pal::TablePrinter::num(on.total, 7),
                     pal::TablePrinter::num(on.wall_seconds, 3),
                     std::to_string(hub.frames_written()),
                     pal::TablePrinter::num(hub.busy_seconds(), 6),
                     pal::TablePrinter::num(ratio, 4)});

      if (on.rank_times != off.rank_times) {
        std::fprintf(stderr,
                     "FAIL: telemetry changed per-rank virtual times "
                     "(%s, %d ranks)\n",
                     backend.name, ranks);
        rc = 1;
      }
      if (on.total != off.total) {
        std::fprintf(stderr,
                     "FAIL: telemetry-on virtual total %.17g != off %.17g "
                     "(%s, %d ranks)\n",
                     on.total, off.total, backend.name, ranks);
        rc = 1;
      }
      if (ratio > overhead_budget) {
        std::fprintf(stderr,
                     "FAIL: hub overhead %.4f of wall exceeds %.2f "
                     "(%s, %d ranks: busy %.6fs, wall %.6fs)\n",
                     ratio, overhead_budget, backend.name, ranks,
                     hub.busy_seconds(), on.wall_seconds);
        rc = 1;
      }
      std::size_t frames = 0;
      if (!stream_has_final_frame(stream_path, &frames)) {
        std::fprintf(stderr, "FAIL: %s stream has no final frame\n",
                     stream_path.c_str());
        rc = 1;
      }
    }
  }
  table.add_note("gates: on == off per-rank virtual clocks; hub busy <= " +
                 pal::TablePrinter::num(overhead_budget * 100, 0) +
                 "% of wall; stream ends with a final frame");
  table.add_note("wall seconds are host-dependent; only the busy/wall "
                 "ratio gates");
  table.print();

  for (const Backend& backend : kBackends) {
    const int breach_rc = run_breach_arm(
        backend, std::string("ablation_telemetry_breach_") + backend.name);
    if (breach_rc != 0) rc = breach_rc;
  }

  const int obs_rc = obs.finish();
  return rc != 0 ? rc : obs_rc;
}
