// Reproduces Fig 11: post hoc analysis cost — read + process (+ write of
// results) — for the histogram, autocorrelation, and slice workloads,
// using 10% of the cores that produced the data (82 / 650 / 4545 readers).
//
// Paper findings: reads take 5-10x the miniapp's own runtime, with large
// variability from shared-filesystem interference.

#include <cstdio>
#include <filesystem>

#include "analysis/contour.hpp"
#include "bench_common.hpp"
#include "core/staged_adaptor.hpp"
#include "io/writers.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

void executed_table() {
  const std::string dir = "/tmp/insitu_bench_fig11";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Produce 3 steps of data at 8 writer ranks.
  const int writers = 8;
  const int steps = 3;
  ObsSession* obs = ObsSession::current();
  comm::Runtime::Options options;
  options.machine = comm::cori_haswell();
  options.observe.trace = obs != nullptr && obs->trace_enabled();
  comm::RunReport produce = comm::Runtime::run(
      writers, options, [&](comm::Communicator& comm) {
    miniapp::OscillatorConfig cfg;
    cfg.global_cells = {16, 16, 16};
    cfg.oscillators = {{miniapp::Oscillator::Kind::kPeriodic,
                        {8, 8, 8}, 3.0, 2.0 * M_PI, 0.0}};
    miniapp::OscillatorSim sim(comm, cfg);
    sim.initialize();
    miniapp::OscillatorDataAdaptor adaptor(sim);
    adaptor.set_communicator(&comm);
    io::VtkMultiFileWriter writer(dir, io::LustreModel(comm.machine().fs));
    for (int s = 0; s < steps; ++s) {
      auto mesh = adaptor.full_mesh();
      (void)writer.write_step(comm, **mesh, s);
      (void)adaptor.release_data();
      sim.step();
    }
      });
  if (obs != nullptr) {
    obs->record("produce/p" + std::to_string(writers), produce);
  }

  // Post hoc phase at 1 reader (>=10% of 8, rounded).
  pal::TablePrinter table(
      "Fig 11 (executed): post hoc read+process at reduced concurrency");
  table.set_header({"workload", "readers", "read (s)", "process (s)"});
  const char* workloads[] = {"histogram", "autocorrelation", "slice"};
  for (const char* workload : workloads) {
    double read_s = 0.0, process_s = 0.0;
    comm::RunReport report = comm::Runtime::run(
        1, options, [&](comm::Communicator& comm) {
      io::PostHocReader reader(dir, io::LustreModel(comm.machine().fs));
      core::StagedDataAdaptor adaptor(nullptr);
      adaptor.set_communicator(&comm);
      // Autocorrelation needs every step; others process each step too.
      auto autocorr = std::make_shared<analysis::Autocorrelation>(
          "data", data::Association::kPoint, 2, 3);
      core::InSituBridge bridge(&comm);
      if (std::string(workload) == "autocorrelation") {
        bridge.add_analysis(autocorr);
      } else if (std::string(workload) == "histogram") {
        bridge.add_analysis(std::make_shared<analysis::HistogramAnalysis>(
            "data", data::Association::kPoint, 64));
      } else {
        backends::CatalystSliceConfig cs;
        cs.image_width = 256;
        cs.image_height = 144;
        cs.scalar_min = -1.5;
        cs.scalar_max = 1.5;
        bridge.add_analysis(std::make_shared<backends::CatalystSlice>(cs));
      }
      (void)bridge.initialize();
      pal::PhaseTimer read_t, process_t;
      for (int s = 0; s < steps; ++s) {
        const double tr = comm.clock().now();
        auto mesh = reader.read_step(comm, s, writers);
        read_t.add(comm.clock().now() - tr);
        if (!mesh.ok()) return;
        const double tp = comm.clock().now();
        adaptor.set_mesh(*mesh);
        (void)bridge.execute(adaptor, 0.0, s);
        process_t.add(comm.clock().now() - tp);
      }
      (void)bridge.finalize();
      read_s = read_t.total();
      process_s = process_t.total();
        });
    if (obs != nullptr) {
      obs->record(std::string("posthoc-") + workload + "/p1", report);
    }
    table.add_row({workload, "1", pal::TablePrinter::num(read_s, 4),
                   pal::TablePrinter::num(process_s, 4)});
  }
  table.print();
  std::filesystem::remove_all(dir);
}

void paper_scale_table() {
  const comm::MachineModel cori = comm::cori_haswell();
  const io::LustreModel fs(cori.fs);
  pal::TablePrinter table(
      "Fig 11 (paper-scale model): per-step read cost at 10% concurrency");
  table.set_header({"producer cores", "readers", "read/step (s)",
                    "sim/step (s)", "read/sim", "interference band"});
  pal::Rng rng(2016);
  for (const auto& scale : paper_scales()) {
    const double read =
        perfmodel::posthoc_read_seconds_per_step(fs, scale, 0.10);
    const double sim = perfmodel::sim_step_seconds(cori, scale);
    // Sampled 10-run interference band (the Fig 11 variability).
    double lo = 1e30, hi = 0.0;
    for (int i = 0; i < 10; ++i) {
      const double f = fs.interference(rng);
      lo = std::min(lo, read * f);
      hi = std::max(hi, read * f);
    }
    table.add_row({std::to_string(scale.ranks),
                   std::to_string(scale.ranks / 10),
                   pal::TablePrinter::num(read, 3),
                   pal::TablePrinter::num(sim, 3),
                   pal::TablePrinter::num(read / sim, 1) + "x",
                   pal::TablePrinter::num(lo, 2) + " - " +
                       pal::TablePrinter::num(hi, 2) + " s"});
  }
  table.add_note("paper: reads 5-10x the miniapp runtime, high variability");
  table.add_note(
      "paper ran autocorrelation readers on 2x nodes for buffer memory");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 11 — post hoc read costs ===\n");
  executed_table();
  paper_scale_table();
  return obs.finish();
}
