// Reproduces Fig 12: weak-scaling time-to-solution of the in situ miniapp
// configurations, compared against the equivalent post hoc pipeline
// (write every step + read at 10% concurrency + process).
//
// Paper finding: "The overall times to solution for the in situ
// configurations are significantly faster than the post hoc
// configurations" — ~9 s/write at 45K x 100 steps alone exceeds any in
// situ configuration's total.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "io/writers.hpp"
#include "pal/config.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

/// Smallest grid that still gives every rank at least one cell: the
/// default 16^3 grid runs out of cells above 4096 ranks, so 10K+ runs
/// (docs/SCALING.md) grow the cube just enough to stay weak-scaled in
/// spirit while keeping the per-run wall time proportional to ranks.
std::int64_t scaled_cells_per_axis(int ranks) {
  std::int64_t n = 16;
  while (n * n * n < ranks) ++n;
  return n;
}

void executed_table(const std::string& configs_filter) {
  pal::TablePrinter table(
      "Fig 12 (executed): in situ time-to-solution, weak scaling");
  table.set_header({"ranks", "config", "time-to-solution (s)"});
  const MiniappConfig configs[] = {
      MiniappConfig::kBaseline, MiniappConfig::kHistogram,
      MiniappConfig::kAutocorrelation, MiniappConfig::kCatalystSlice,
      MiniappConfig::kLibsimSlice};
  for (const int p : executed_ranks()) {
    for (const MiniappConfig config : configs) {
      // `configs=Histogram,Baseline` runs a subset — how CI executes a
      // single 10,240-rank point without paying for all five pipelines.
      if (!configs_filter.empty() &&
          configs_filter.find(to_string(config)) == std::string::npos) {
        continue;
      }
      MiniappBenchParams params;
      params.ranks = p;
      params.cells_per_axis =
          std::max<std::int64_t>(params.cells_per_axis,
                                 scaled_cells_per_axis(p));
      const RunResult r = run_miniapp_config(config, params);
      table.add_row({std::to_string(p), to_string(config),
                     pal::TablePrinter::num(r.total, 4)});
    }
  }
  table.print();
}

void paper_scale_table() {
  const comm::MachineModel cori = comm::cori_haswell();
  const io::LustreModel fs(cori.fs);
  const int steps = 100;
  pal::TablePrinter table(
      "Fig 12 (paper-scale model): 100-step totals, in situ vs post hoc");
  table.set_header({"cores", "config", "total (s)", "vs Baseline"});
  for (const auto& scale : paper_scales()) {
    const double sim = perfmodel::sim_step_seconds(cori, scale);
    const double base_total = steps * sim;

    struct Entry {
      const char* name;
      double total;
    };
    const Entry entries[] = {
        {"Baseline (in situ)", base_total},
        {"Histogram (in situ)",
         steps * (sim + perfmodel::histogram_step_seconds(cori, scale, 64))},
        {"Autocorrelation (in situ)",
         steps * (sim +
                  perfmodel::autocorrelation_step_seconds(cori, scale, 10)) +
             perfmodel::autocorrelation_finalize_seconds(cori, scale, 10, 3)},
        {"Catalyst-slice (in situ)",
         steps * (sim + perfmodel::slice_render_step_seconds(
                            cori, scale, 1920ll * 1080, true, true))},
        {"Libsim-slice (in situ)",
         steps * (sim + perfmodel::slice_render_step_seconds(
                            cori, scale, 1600ll * 1600, false, true))},
        {"post hoc (write+read+histogram)",
         steps * (sim + perfmodel::posthoc_write_seconds(fs, scale) +
                  perfmodel::posthoc_read_seconds_per_step(fs, scale, 0.10) +
                  perfmodel::histogram_step_seconds(cori, scale, 64))},
    };
    for (const Entry& entry : entries) {
      table.add_row({std::to_string(scale.ranks), entry.name,
                     pal::TablePrinter::num(entry.total, 1),
                     pal::TablePrinter::num(entry.total / base_total, 2) +
                         "x"});
    }
  }
  table.add_note(
      "paper: every in situ config beats post hoc; write cost alone "
      "(~9 s x 100 steps at 45K) exceeds all in situ totals");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  const pal::Config args = pal::Config::from_args(argc, argv);
  std::string configs = args.get_string_or("configs", "");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--configs") == 0) configs = argv[i + 1];
  }
  std::printf("=== bench: Fig 12 — in situ vs post hoc time-to-solution ===\n");
  executed_table(configs);
  paper_scale_table();
  return obs.finish();
}
