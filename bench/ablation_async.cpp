// Ablation: synchronous vs asynchronous in situ execution (§5.2's "hybrid
// in situ" / overlap discussion).
//
// The synchronous bridge charges every analysis to the simulation's
// critical path. The AsyncBridge snapshots each step and runs analyses on
// a per-rank worker whose collectives advance a worker-owned virtual
// clock; the simulation pays only snapshot + hand-off (plus any kBlock
// stall), and end-to-end time becomes max(simulation, analysis drain).
// Rows show the per-step simulation-visible cost, end-to-end virtual
// time, analyzed/total steps, and the end-to-end speedup over sync for
// each backpressure policy.

#include <cstdio>
#include <string>

#include "analysis/autocorrelation.hpp"
#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "comm/overlap.hpp"
#include "comm/runtime.hpp"
#include "core/async_bridge.hpp"
#include "core/bridge.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/table.hpp"
#include "pal/timer.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

enum class Workload { kHistogram, kAutocorrelation, kCatalystSlice };

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kHistogram: return "Histogram";
    case Workload::kAutocorrelation: return "Autocorrelation";
    case Workload::kCatalystSlice: return "Catalyst-slice";
  }
  return "?";
}

core::AnalysisAdaptorPtr make_analysis(Workload w) {
  switch (w) {
    case Workload::kHistogram:
      return std::make_shared<analysis::HistogramAnalysis>(
          "data", data::Association::kPoint, 64);
    case Workload::kAutocorrelation:
      return std::make_shared<analysis::Autocorrelation>(
          "data", data::Association::kPoint, /*window=*/10, /*top_k=*/3);
    case Workload::kCatalystSlice: {
      backends::CatalystSliceConfig cs;
      cs.image_width = 256;
      cs.image_height = 144;
      cs.scalar_min = -1.5;
      cs.scalar_max = 1.5;
      return std::make_shared<backends::CatalystSlice>(cs);
    }
  }
  return nullptr;
}

struct CaseResult {
  double per_step_sim_visible = 0.0;  // mean bridge.execute on the sim clock
  double total = 0.0;                 // end-to-end virtual seconds
  long executed = 0;
  long dropped = 0;
};

constexpr int kSteps = 10;

CaseResult run_case(Workload workload, int ranks, bool async,
                    comm::BackpressurePolicy policy, int queue_depth,
                    const std::string& label) {
  CaseResult result;
  bench::ObsSession* obs = bench::ObsSession::current();
  const comm::Runtime::Options options = bench::ablation_options();

  comm::RunReport report = comm::Runtime::run(
      ranks, options, [&](comm::Communicator& comm) {
        miniapp::OscillatorSim sim(comm,
                                   bench::ablation_oscillator_config(16, 3.0));
        sim.initialize();
        miniapp::OscillatorDataAdaptor adaptor(sim);

        if (async) {
          core::AsyncBridgeOptions abo;
          abo.policy = policy;
          abo.queue_depth = queue_depth;
          core::AsyncBridge bridge(&comm, abo);
          bridge.add_analysis(make_analysis(workload));
          (void)bridge.initialize();
          for (int s = 0; s < kSteps; ++s) {
            sim.step();
            (void)bridge.execute(adaptor, sim.time(), s);
          }
          (void)bridge.finalize();
          if (comm.rank() == 0) {
            result.per_step_sim_visible =
                bridge.timings().analysis_per_step.mean();
            result.executed = bridge.executed_steps();
            result.dropped = bridge.total_dropped();
          }
        } else {
          core::InSituBridge bridge(&comm);
          bridge.add_analysis(make_analysis(workload));
          (void)bridge.initialize();
          for (int s = 0; s < kSteps; ++s) {
            sim.step();
            (void)bridge.execute(adaptor, sim.time(), s);
          }
          (void)bridge.finalize();
          if (comm.rank() == 0) {
            result.per_step_sim_visible =
                bridge.timings().analysis_per_step.mean();
            result.executed = kSteps;
          }
        }
      });
  result.total = report.max_virtual_seconds();
  if (obs != nullptr) obs->record(label, report);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: ablation — sync vs async in situ execution ===\n");

  constexpr comm::BackpressurePolicy kPolicies[] = {
      comm::BackpressurePolicy::kBlock,
      comm::BackpressurePolicy::kDropOldest,
      comm::BackpressurePolicy::kLatestOnly,
  };
  constexpr int kQueueDepth = 2;

  for (const Workload workload :
       {Workload::kHistogram, Workload::kAutocorrelation,
        Workload::kCatalystSlice}) {
    pal::TablePrinter table(std::string("Oscillator + ") +
                            to_string(workload) +
                            " (executed, queue_depth=2)");
    table.set_header({"ranks", "mode", "sim-visible/step (s)",
                      "end-to-end (s)", "analyzed", "speedup"});
    for (const int ranks : {4, 8}) {
      const CaseResult sync =
          run_case(workload, ranks, /*async=*/false,
                   comm::BackpressurePolicy::kBlock, kQueueDepth,
                   std::string(to_string(workload)) + "/sync/p" +
                       std::to_string(ranks));
      table.add_row({std::to_string(ranks), "sync",
                     pal::TablePrinter::num(sync.per_step_sim_visible, 7),
                     pal::TablePrinter::num(sync.total, 5),
                     std::to_string(sync.executed) + "/" +
                         std::to_string(kSteps),
                     "1.00x"});
      for (const comm::BackpressurePolicy policy : kPolicies) {
        const CaseResult async_result =
            run_case(workload, ranks, /*async=*/true, policy, kQueueDepth,
                     std::string(to_string(workload)) + "/async-" +
                         comm::to_string(policy) + "/p" +
                         std::to_string(ranks));
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2fx",
                      async_result.total > 0.0
                          ? sync.total / async_result.total
                          : 0.0);
        table.add_row(
            {std::to_string(ranks),
             std::string("async:") + comm::to_string(policy),
             pal::TablePrinter::num(async_result.per_step_sim_visible, 7),
             pal::TablePrinter::num(async_result.total, 5),
             std::to_string(async_result.executed) + "/" +
                 std::to_string(kSteps),
             speedup});
      }
    }
    table.add_note(
        "async moves analysis off the simulation's critical path; "
        "end-to-end = max(sim, analysis drain)");
    table.print();
  }
  return obs.finish();
}
