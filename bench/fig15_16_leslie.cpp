// Reproduces Fig 15 (AVF-LESLIE strong scaling with SENSEI/Libsim on
// Titan: 1025^3 grid, 8K-131K cores; per-iteration solver time vs in situ
// init vs analyze time) and Fig 16 (the per-iteration sawtooth at 65K:
// ~7-8 s on the 1-in-5 steps that render, <0.5 s adaptor overhead on the
// other 4).

#include <cstdio>

#include "backends/libsim.hpp"
#include "bench_common.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "pal/table.hpp"
#include "perfmodel/paper_model.hpp"
#include "proxy/leslie.hpp"

namespace {

using namespace insitu;

const char* kTmlSession = R"(
[session]
array = vorticity_magnitude
colormap = heat
min = 0
max = 2
width = 200
height = 200
[plot0]
type = isosurface
value = 0.4
[plot1]
type = isosurface
value = 0.8
[plot2]
type = isosurface
value = 1.2
[plot3]
type = slice
axis = 0
value = 8
[plot4]
type = slice
axis = 1
value = 8
[plot5]
type = slice
axis = 2
value = 8
)";

void executed_run() {
  pal::TablePrinter fig16(
      "Fig 16 (executed, 4 ranks): per-iteration SENSEI cost, render "
      "every 5 steps");
  fig16.set_header({"step", "sensei analyze (s)", "rendered?"});
  bench::ObsSession* obs = bench::ObsSession::current();
  comm::Runtime::Options options;
  options.machine = comm::titan();
  options.observe.trace = obs != nullptr && obs->trace_enabled();
  std::vector<double> per_step(15, 0.0);
  long images = 0;
  comm::RunReport report = comm::Runtime::run(4, options, [&](comm::Communicator& comm) {
    proxy::LeslieConfig cfg;
    cfg.global_points = {17, 17, 17};
    proxy::LeslieSim sim(comm, cfg);
    sim.initialize();
    proxy::LeslieDataAdaptor adaptor(sim);
    backends::LibsimConfig lc;
    lc.session_text = kTmlSession;
    lc.every_n_steps = 5;  // the AVF-LESLIE cadence
    auto libsim = std::make_shared<backends::LibsimRender>(lc);
    core::InSituBridge bridge(&comm);
    bridge.add_analysis(libsim);
    (void)bridge.initialize();
    for (int s = 0; s < 15; ++s) {
      sim.step();
      const double t0 = comm.clock().now();
      (void)bridge.execute(adaptor, sim.time(), s);
      if (comm.rank() == 0) {
        per_step[static_cast<std::size_t>(s)] = comm.clock().now() - t0;
      }
    }
    if (comm.rank() == 0) images = libsim->images_produced();
  });
  if (obs != nullptr) obs->record("leslie-tml/p4", report);
  for (int s = 0; s < 15; ++s) {
    fig16.add_row({std::to_string(s),
                   pal::TablePrinter::num(per_step[static_cast<std::size_t>(s)], 5),
                   s % 5 == 0 ? "yes" : "no"});
  }
  fig16.add_note("images produced: " + std::to_string(images));
  fig16.add_note("paper: render steps 7-8 s, others <0.5 s at 65K");
  fig16.print();
}

void paper_scale_tables() {
  const comm::MachineModel titan = comm::titan();
  pal::TablePrinter fig15(
      "Fig 15 (paper-scale model): AVF-LESLIE 1025^3 strong scaling");
  fig15.set_header({"cores", "solver/step (s)", "sensei init (s)",
                    "render step analyze (s)", "adaptor-only step (s)"});
  for (const int ranks : {8192, 16384, 32768, 65536, 131072}) {
    perfmodel::LeslieScale scale;
    scale.ranks = ranks;
    fig15.add_row(
        {std::to_string(ranks),
         pal::TablePrinter::num(
             perfmodel::leslie_solver_step_seconds(titan, scale), 3),
         pal::TablePrinter::num(perfmodel::libsim_init_seconds(titan, ranks),
                                3),
         pal::TablePrinter::num(
             perfmodel::leslie_insitu_render_seconds(titan, scale), 3),
         pal::TablePrinter::num(
             perfmodel::leslie_adaptor_overhead_seconds(titan, scale), 4)});
  }
  fig15.add_note(
      "render cost grows with cores (per-plot pipeline sync + compositing) "
      "and dwarfs the adaptor cost — the Fig 15 shape; amortized over the "
      "1-in-5 cadence it is the paper's 1-1.5 s/step average");
  fig15.print();

  // The §4.2.2 post hoc contrast: 24 s to write one 1025^3 timestep.
  perfmodel::LeslieScale at65k;
  at65k.ranks = 65536;
  const io::LustreModel fs(titan.fs);
  // Reactive multi-species state: ~13 field variables per point.
  const std::uint64_t volume_bytes =
      static_cast<std::uint64_t>(at65k.total_points) * sizeof(double) * 13 /
      static_cast<std::uint64_t>(at65k.ranks);
  pal::TablePrinter contrast("§4.2.2: in situ vs writing volume data (65K)");
  contrast.set_header({"path", "cost (s)", "paper"});
  contrast.add_row(
      {"write one volume timestep",
       pal::TablePrinter::num(
           fs.file_per_rank_write_time(at65k.ranks, volume_bytes), 1),
       "~24 s"});
  contrast.add_row(
      {"in situ render (every 5th step, amortized)",
       pal::TablePrinter::num(
           perfmodel::leslie_insitu_render_seconds(titan, at65k) / 5.0, 2),
       "1-1.5 s/step"});
  contrast.add_note("paper: 3-4x greater temporal resolution for the cost");
  contrast.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 15 & Fig 16 — AVF-LESLIE on Titan ===\n");
  executed_run();
  paper_scale_tables();
  return obs.finish();
}
