// Ablation: collective engines (flat / tree).
//
// The hierarchical collective engine's contract (docs/SCALING.md) is
// that *how* a rendezvous executes is invisible to *what* it computes:
// combining contributions through arity-wide slot trees with targeted
// wakeups must yield exactly the results of the flat single-slot engine,
// under either scheduler backend. Three phases:
//
//   1. identity — the executed oscillator + histogram + Catalyst-slice
//      pipeline per (engine, backend) arm with a deliberately small
//      arity (4) so even 16 executed ranks exercise a multi-level tree;
//      gates bit-identical per-rank virtual times, histogram contents,
//      and rendered-image hashes across all arms.
//   2. determinism — a chained floating-point sum allreduce (the
//      order-sensitive case) run repeatedly per arm at 96 ranks /
//      arity 4; gates bit-identical results across repeats, engines,
//      and backends. This is what the canonical blocked combine
//      schedule buys: the fold order depends only on (P, arity), never
//      on arrival order.
//   3. wall — a collective-heavy loop (barrier + allreduce + allgather
//      + periodic gatherv) at 4K/10K executed ranks under sched=mn,
//      engine flat vs tree. Reports wall clock per arm and gates the
//      tree engine >= 2x faster at exactly 10240 ranks (optimized,
//      unsanitized builds only). `ranks=` replaces the wall rank list —
//      e.g. `ranks=45440` for the paper-scale report-only run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "comm/coll.hpp"
#include "comm/runtime.hpp"
#include "comm/sched.hpp"
#include "core/bridge.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/table.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

// Virtual-time identity gates always run; the wall-clock speedup gate is
// meaningless under sanitizers or without optimization.
#if defined(__OPTIMIZE__) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
constexpr bool kWallGates = true;
#else
constexpr bool kWallGates = false;
#endif

constexpr int kSteps = 10;
constexpr int kIdentityArity = 4;
constexpr int kWallIters = 16;
constexpr int kWallGateRanks = 10240;
constexpr double kWallGateSpeedup = 2.0;

struct Arm {
  const char* name;
  comm::CollEngine engine;
  comm::SchedBackend backend;
};

constexpr Arm kIdentityArms[] = {
    {"flat/threads", comm::CollEngine::kFlat, comm::SchedBackend::kThreads},
    {"tree/threads", comm::CollEngine::kTree, comm::SchedBackend::kThreads},
    {"flat/mn", comm::CollEngine::kFlat, comm::SchedBackend::kMn},
    {"tree/mn", comm::CollEngine::kTree, comm::SchedBackend::kMn},
};

struct ArmResult {
  std::vector<double> rank_times;  ///< per-rank virtual seconds
  double total = 0.0;              ///< end-to-end virtual seconds
  std::vector<std::int64_t> bins;  ///< final histogram (root)
  std::uint64_t image_hash = 0;    ///< final slice image (root)
  double wall_seconds = 0.0;
};

/// The standard ablation pipeline (same as bench/ablation_sched) under
/// one (engine, backend) arm. The engine default is process-global and
/// read at world-group creation, so it is set per run.
ArmResult run_identity_arm(const Arm& arm, int ranks,
                           const std::string& label) {
  ArmResult result;
  bench::ObsSession* obs = bench::ObsSession::current();
  comm::set_default_coll_engine(arm.engine);
  comm::set_default_coll_arity(kIdentityArity);
  comm::Runtime::Options options = bench::ablation_options();
  options.sched.backend = arm.backend;

  const auto wall0 = std::chrono::steady_clock::now();
  comm::RunReport report = comm::Runtime::run(
      ranks, options, [&](comm::Communicator& comm) {
        miniapp::OscillatorSim sim(comm,
                                   bench::ablation_oscillator_config(16, 3.0));
        sim.initialize();
        miniapp::OscillatorDataAdaptor adaptor(sim);

        auto hist = std::make_shared<analysis::HistogramAnalysis>(
            "data", data::Association::kPoint, 64);
        backends::CatalystSliceConfig cs;
        cs.image_width = 256;
        cs.image_height = 144;
        cs.scalar_min = -1.5;
        cs.scalar_max = 1.5;
        auto slice = std::make_shared<backends::CatalystSlice>(cs);

        core::InSituBridge bridge(&comm);
        bridge.add_analysis(hist);
        bridge.add_analysis(slice);
        (void)bridge.initialize();
        for (int s = 0; s < kSteps; ++s) {
          sim.step();
          (void)bridge.execute(adaptor, sim.time(), s);
        }
        (void)bridge.finalize();
        if (comm.rank() == 0) {
          result.bins = hist->last_result().bins;
          result.image_hash = slice->last_image().color_hash();
        }
      });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall0;
  result.wall_seconds = wall.count();
  result.total = report.max_virtual_seconds();
  result.rank_times.reserve(report.ranks.size());
  for (const comm::RankStats& r : report.ranks) {
    result.rank_times.push_back(r.virtual_seconds);
  }
  if (obs != nullptr) obs->record(label, report);
  return result;
}

/// Chained float-sum allreduce: every rank contributes values derived
/// from its rank, and each round feeds the previous result back in, so
/// any combine-order difference compounds instead of cancelling.
/// Returns the final bit pattern (identical on all ranks; rank 0's).
std::vector<std::uint64_t> run_float_determinism_arm(comm::CollEngine engine,
                                                     comm::SchedBackend backend,
                                                     int ranks) {
  comm::set_default_coll_engine(engine);
  comm::set_default_coll_arity(kIdentityArity);
  comm::Runtime::Options options = bench::ablation_options();
  options.observe.trace = false;
  options.sched.backend = backend;

  constexpr std::size_t kValues = 16;
  std::vector<std::uint64_t> bits(kValues, 0);
  (void)comm::Runtime::run(ranks, options, [&](comm::Communicator& comm) {
    std::vector<double> values(kValues);
    for (std::size_t i = 0; i < kValues; ++i) {
      // Deliberately awkward magnitudes: summing ranks in a different
      // order changes the rounding of these immediately.
      values[i] = (comm.rank() + 1) * 1e-7 +
                  (comm.rank() % 7) * 1.0 / 3.0 +
                  static_cast<double>(i) * 0.1;
    }
    for (int round = 0; round < 8; ++round) {
      comm.allreduce(std::span<double>(values), comm::ReduceOp::kSum);
      for (std::size_t i = 0; i < kValues; ++i) {
        values[i] = values[i] / comm.size() + comm.rank() * 1e-9;
      }
    }
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < kValues; ++i) {
        std::memcpy(&bits[i], &values[i], sizeof(double));
      }
    }
  });
  return bits;
}

/// Collective-heavy loop at large executed scale: no simulation, just
/// the rendezvous traffic of a tightly coupled analysis pipeline.
double run_wall_arm(comm::CollEngine engine, int ranks) {
  comm::set_default_coll_engine(engine);
  comm::set_default_coll_arity(comm::kDefaultCollArity);
  comm::Runtime::Options options = bench::ablation_options();
  options.observe.trace = false;  // 10K-rank traces would dominate the wall
  options.sched.backend = comm::SchedBackend::kMn;

  const auto wall0 = std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> sink{0};
  (void)comm::Runtime::run(ranks, options, [&](comm::Communicator& comm) {
    double payload[8];
    for (int i = 0; i < 8; ++i) payload[i] = comm.rank() * 0.001 + i;
    std::uint64_t local = 0;
    for (int iter = 0; iter < kWallIters; ++iter) {
      comm.barrier();
      comm.allreduce(std::span<double>(payload, 8), comm::ReduceOp::kSum);
      if (iter % 4 == 1) {
        // The engine-defining op: the tree engine hands back an aliased
        // view of the shared table, the flat engine deep-copies all P
        // contributions to every rank like the original single-slot
        // implementation did.
        const comm::BlobTablePtr table = comm.allgather_blobs(
            std::as_bytes(std::span<const double>(payload, 8)));
        local += table->front()->size() + table->back()->size();
      }
      if (iter % 4 == 3) {
        const std::int32_t mine = comm.rank();
        (void)comm.gatherv(std::span<const std::int32_t>(&mine, 1), 0);
      }
    }
    sink.fetch_add(local, std::memory_order_relaxed);
  });
  if (sink.load() == 0) std::fprintf(stderr, "warning: empty allgather\n");
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: ablation — collective engines ===\n");
  int rc = 0;

  // ---- phase 1: identity ----
  {
    pal::TablePrinter table(
        "Oscillator 16^3 + histogram + Catalyst slice (executed, " +
        std::to_string(kSteps) + " steps, coll arity " +
        std::to_string(kIdentityArity) + ")");
    table.set_header({"ranks", "engine/backend", "end-to-end virt (s)",
                      "histogram total", "image hash", "wall (s)"});
    for (const int ranks : {4, 16, 64}) {
      ArmResult arms[std::size(kIdentityArms)];
      for (std::size_t i = 0; i < std::size(kIdentityArms); ++i) {
        arms[i] = run_identity_arm(kIdentityArms[i], ranks,
                                   std::string("pipeline/") +
                                       kIdentityArms[i].name + "/p" +
                                       std::to_string(ranks));
        std::int64_t total_count = 0;
        for (const std::int64_t b : arms[i].bins) total_count += b;
        char hash[32];
        std::snprintf(hash, sizeof hash, "%016llx",
                      static_cast<unsigned long long>(arms[i].image_hash));
        table.add_row({std::to_string(ranks), kIdentityArms[i].name,
                       pal::TablePrinter::num(arms[i].total, 7),
                       std::to_string(total_count), hash,
                       pal::TablePrinter::num(arms[i].wall_seconds, 3)});
      }
      const ArmResult& ref = arms[0];
      for (std::size_t i = 1; i < std::size(kIdentityArms); ++i) {
        if (arms[i].rank_times != ref.rank_times ||
            arms[i].total != ref.total) {
          std::fprintf(stderr,
                       "FAIL: %s virtual times differ from %s at %d ranks\n",
                       kIdentityArms[i].name, kIdentityArms[0].name, ranks);
          rc = 1;
        }
        if (arms[i].bins != ref.bins) {
          std::fprintf(stderr, "FAIL: %s histogram differs at %d ranks\n",
                       kIdentityArms[i].name, ranks);
          rc = 1;
        }
        if (arms[i].image_hash != ref.image_hash) {
          std::fprintf(stderr, "FAIL: %s image differs at %d ranks\n",
                       kIdentityArms[i].name, ranks);
          rc = 1;
        }
      }
    }
    table.add_note("engines must be interchangeable: bit-identical per-rank "
                   "virtual times, histograms, and images per backend");
    table.print();
  }

  // ---- phase 2: float determinism ----
  {
    constexpr int kRanks = 96;  // 4 tree levels at arity 4
    std::vector<std::uint64_t> reference;
    bool determinism_ok = true;
    for (const Arm& arm : kIdentityArms) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        const std::vector<std::uint64_t> bits =
            run_float_determinism_arm(arm.engine, arm.backend, kRanks);
        if (reference.empty()) {
          reference = bits;
        } else if (bits != reference) {
          std::fprintf(stderr,
                       "FAIL: float allreduce bits differ (%s, repeat %d)\n",
                       arm.name, repeat);
          determinism_ok = false;
          rc = 1;
        }
      }
    }
    std::printf("\nfloat allreduce determinism (%d ranks, arity %d, "
                "8 chained sums x 2 repeats x 4 arms): %s\n",
                kRanks, kIdentityArity,
                determinism_ok ? "bit-identical" : "FAILED");
  }

  // ---- phase 3: wall clock at scale ----
  {
    std::vector<int> rank_counts = {4096, kWallGateRanks};
    if (bench::ObsSession::current() != nullptr &&
        !bench::ObsSession::current()->ranks_override().empty()) {
      rank_counts = bench::ObsSession::current()->ranks_override();
    }
    pal::TablePrinter table(
        "Collective-heavy loop (sched=mn, " + std::to_string(kWallIters) +
        " iters of barrier+allreduce, allgather + gatherv every 4th)");
    table.set_header(
        {"ranks", "flat wall (s)", "tree wall (s)", "speedup", "gate"});
    for (const int ranks : rank_counts) {
      const double flat_wall = run_wall_arm(comm::CollEngine::kFlat, ranks);
      const double tree_wall = run_wall_arm(comm::CollEngine::kTree, ranks);
      const double speedup = tree_wall > 0.0 ? flat_wall / tree_wall : 0.0;
      const bool gated = kWallGates && ranks == kWallGateRanks;
      std::string verdict = "report-only";
      if (gated) {
        if (speedup >= kWallGateSpeedup) {
          verdict = ">=2x ok";
        } else {
          verdict = "FAIL";
          std::fprintf(stderr,
                       "FAIL: tree engine %.2fx faster than flat at %d ranks "
                       "(gate: >= %.1fx)\n",
                       speedup, ranks, kWallGateSpeedup);
          rc = 1;
        }
      }
      table.add_row({std::to_string(ranks),
                     pal::TablePrinter::num(flat_wall, 3),
                     pal::TablePrinter::num(tree_wall, 3),
                     pal::TablePrinter::num(speedup, 2) + "x", verdict});
    }
    table.add_note("wall seconds are host-dependent; only the flat/tree "
                   "ratio at " + std::to_string(kWallGateRanks) +
                   " ranks gates (optimized, unsanitized builds)");
    table.add_note("ranks= replaces the list, e.g. ranks=45440 for the "
                   "paper-scale report-only run");
    table.print();
  }

  const int obs_rc = obs.finish();
  return rc != 0 ? rc : obs_rc;
}
