// Reproduces Fig 3 (time to solution) and Fig 4 (memory footprint) of the
// SC16 paper: Original (subroutine-called autocorrelation, no SENSEI) vs
// Autocorrelation (the same analysis behind the SENSEI generic data
// interface), weak scaling.
//
// Paper finding: "we see no measurable difference between the two" — the
// zero-copy interface adds neither runtime nor memory.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

void executed_table() {
  pal::TablePrinter table(
      "Fig 3+4 (executed): Original vs SENSEI Autocorrelation, weak scaling");
  table.set_header({"ranks", "config", "time-to-solution (s)",
                    "memory HWM (sum)", "overhead vs Original"});
  for (const int p : executed_ranks()) {
    MiniappBenchParams params;
    params.ranks = p;
    params.cells_per_axis = 16 * static_cast<int>(std::cbrt(p) + 0.5);
    const RunResult original =
        run_miniapp_config(MiniappConfig::kOriginal, params);
    const RunResult sensei =
        run_miniapp_config(MiniappConfig::kAutocorrelation, params);
    table.add_row({std::to_string(p), "Original",
                   pal::TablePrinter::num(original.total, 4),
                   pal::TablePrinter::bytes(
                       static_cast<double>(original.mem_high_water)),
                   "-"});
    const double overhead =
        original.total > 0.0 ? (sensei.total / original.total - 1.0) * 100.0
                             : 0.0;
    table.add_row({std::to_string(p), "Autocorrelation (SENSEI)",
                   pal::TablePrinter::num(sensei.total, 4),
                   pal::TablePrinter::bytes(
                       static_cast<double>(sensei.mem_high_water)),
                   pal::TablePrinter::num(overhead, 2) + " %"});
  }
  table.add_note(
      "paper: 'no measurable difference between the two' (zero-copy)");
  table.print();
}

void paper_scale_table() {
  const comm::MachineModel cori = comm::cori_haswell();
  pal::TablePrinter table(
      "Fig 3+4 (paper-scale model): per-run totals at Cori rank counts");
  table.set_header({"cores", "config", "100-step total (s)",
                    "memory/rank (buffers)"});
  for (const auto& scale : paper_scales()) {
    const double sim = perfmodel::sim_step_seconds(cori, scale);
    const double autocorr =
        perfmodel::autocorrelation_step_seconds(cori, scale, 10);
    const double fin =
        perfmodel::autocorrelation_finalize_seconds(cori, scale, 10, 3);
    const double grid_mb =
        static_cast<double>(scale.points_per_rank) * 8.0;
    const double buffers_mb = grid_mb * (1.0 + 2.0 * 10.0);
    table.add_row({std::to_string(scale.ranks), "Original",
                   pal::TablePrinter::num(100.0 * (sim + autocorr) + fin, 1),
                   pal::TablePrinter::bytes(buffers_mb)});
    // SENSEI adds only pointer bookkeeping per step.
    const double sensei_step =
        perfmodel::sensei_baseline_step_seconds(cori);
    table.add_row({std::to_string(scale.ranks), "Autocorrelation (SENSEI)",
                   pal::TablePrinter::num(
                       100.0 * (sim + autocorr + sensei_step) + fin, 1),
                   pal::TablePrinter::bytes(buffers_mb)});
  }
  table.add_note("identical memory: the SENSEI wrap is zero-copy");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 3 & Fig 4 — impact of the SENSEI interface ===\n");
  executed_table();
  paper_scale_table();
  return obs.finish();
}
