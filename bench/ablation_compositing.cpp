// Ablation: the two compositing algorithms (§4.1.3 notes Catalyst and
// Libsim "use different compositing algorithms ... there are differences
// in the scaling characteristics between these two algorithms").
//
// Executed rows really move pixels between rank threads; paper-scale rows
// evaluate the same cost functions at large P, where binary swap's
// region-halving wins over full-image tree exchanges.

#include <cstdio>

#include "comm/runtime.hpp"
#include "pal/table.hpp"
#include "render/compositor.hpp"

#include "bench_common.hpp"

namespace {

using namespace insitu;

void executed_table() {
  pal::TablePrinter table("Compositing ablation (executed)");
  table.set_header({"ranks", "pixels", "tree (s)", "binary swap (s)",
                    "same image?"});
  for (const int p : {2, 4, 8, 16}) {
    for (const int dim : {128, 256}) {
      double tree_time = 0.0, swap_time = 0.0;
      std::uint64_t tree_hash = 0, swap_hash = 0;
      const comm::Runtime::Options options = bench::ablation_options();
      comm::Runtime::run(p, options, [&](comm::Communicator& comm) {
        render::Image local(dim, dim);
        // Each rank paints a band at its own depth.
        for (int y = comm.rank(); y < dim; y += p) {
          for (int x = 0; x < dim; ++x) {
            local.pixel(x, y) = render::Rgba{
                static_cast<std::uint8_t>(comm.rank() * 16), 0, 0, 255};
            local.depth(x, y) = static_cast<float>(comm.rank() + 1);
          }
        }
        const double t0 = comm.clock().now();
        render::Image tree = render::composite_tree(comm, local);
        const double t1 = comm.clock().now();
        render::Image swap = render::composite_binary_swap(comm, local);
        const double t2 = comm.clock().now();
        if (comm.rank() == 0) {
          tree_time = t1 - t0;
          swap_time = t2 - t1;
          tree_hash = tree.color_hash();
          swap_hash = swap.color_hash();
        }
      });
      table.add_row({std::to_string(p), std::to_string(dim) + "x" +
                                            std::to_string(dim),
                     pal::TablePrinter::num(tree_time, 5),
                     pal::TablePrinter::num(swap_time, 5),
                     tree_hash == swap_hash ? "yes" : "NO"});
    }
  }
  table.print();
}

void paper_scale_table() {
  const comm::MachineModel cori = comm::cori_haswell();
  pal::TablePrinter table("Compositing ablation (paper-scale model)");
  table.set_header({"ranks", "tree 1920x1080 (s)", "binary swap (s)",
                    "swap speedup"});
  for (const int p : {812, 6496, 45440, 262144}) {
    const std::uint64_t pixels = 1920ull * 1080;
    const double tree = cori.composite_tree_time(p, pixels);
    const double swap = cori.composite_binary_swap_time(p, pixels);
    table.add_row({std::to_string(p), pal::TablePrinter::num(tree, 4),
                   pal::TablePrinter::num(swap, 4),
                   pal::TablePrinter::num(tree / swap, 2) + "x"});
  }
  table.add_note("compositing is 'a challenging problem that can require "
                 "significant tuning' (§4.1.3) — untuned here, as in paper");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: ablation — compositing algorithms ===\n");
  executed_table();
  paper_scale_table();
  return obs.finish();
}
