#include "bench_common.hpp"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "comm/coll.hpp"
#include "comm/sched.hpp"
#include "exec/task_pool.hpp"
#include "obs/analyze/baseline.hpp"
#include "pal/config.hpp"

namespace insitu::bench {

namespace {

ObsSession* g_obs_session = nullptr;

}  // namespace

ObsSession::ObsSession(int argc, const char* const* argv) {
  const pal::Config args = pal::Config::from_args(argc, argv);
  trace_path_ = args.get_string_or("trace", "");
  metrics_path_ = args.get_string_or("metrics", "");
  baseline_path_ = args.get_string_or("baseline", "");
  if (argc > 0) {
    const std::string_view arg0(argv[0]);
    const std::size_t slash = arg0.find_last_of('/');
    tool_ = std::string(
        slash == std::string_view::npos ? arg0 : arg0.substr(slash + 1));
  }
  for (int i = 1; i < argc; ++i) {
    if (i > 1) config_ += ' ';
    config_ += argv[i];
  }
  // Kernel thread budget: `threads=N` (repo idiom) or `--threads N`.
  int threads = static_cast<int>(args.get_int_or("threads", 1));
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(argv[i + 1]);
    }
  }
  threads_ = threads < 1 ? 1 : threads;
  exec::set_global_threads(threads_);
  // Kernel-dispatch variant: `kernels=NAME` or `--kernels NAME`
  // overrides the INSITU_KERNELS default for the whole process.
  std::string kernels = args.get_string_or("kernels", "");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--kernels") == 0) kernels = argv[i + 1];
  }
  if (!kernels.empty()) {
    if (kernels::set_variant(kernels)) {
      kernels_ = std::string(kernels::variant_name(kernels::active_variant()));
    } else {
      std::fprintf(stderr, "unknown kernels variant '%s' (ignored)\n",
                   kernels.c_str());
    }
  }
  // Scheduler backend: `sched=NAME` or `--sched NAME`. Unlike the kernel
  // variant (where "ignore and run the default" still measures the same
  // thing), running the wrong scheduler invalidates what the bench
  // claims to compare, so a bad value is a hard error.
  std::string sched = args.get_string_or("sched", "");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--sched") == 0) sched = argv[i + 1];
  }
  if (!sched.empty()) {
    const auto backend = comm::parse_sched_backend(sched);
    if (!backend.has_value()) {
      std::fprintf(stderr,
                   "error: sched=%s is not a scheduler backend "
                   "(expected threads|mn)\n",
                   sched.c_str());
      std::exit(2);
    }
    comm::set_default_sched_backend(*backend);
    sched_ = comm::to_string(*backend);
  }
  sched_workers_ = static_cast<int>(args.get_int_or("sched_workers", 0));
  if (sched_workers_ < 0) sched_workers_ = 0;
  // Collective engine: `coll=NAME` or `--coll NAME`, plus the combining
  // tree fan-in `coll_arity=N`. Like the scheduler backend, running the
  // wrong engine invalidates what the bench claims to compare, so bad
  // values are hard errors.
  std::string coll = args.get_string_or("coll", "");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--coll") == 0) coll = argv[i + 1];
  }
  if (!coll.empty()) {
    const auto engine = comm::parse_coll_engine(coll);
    if (!engine.has_value()) {
      std::fprintf(stderr,
                   "error: coll=%s is not a collective engine "
                   "(expected flat|tree)\n",
                   coll.c_str());
      std::exit(2);
    }
    comm::set_default_coll_engine(*engine);
    coll_ = comm::to_string(*engine);
  }
  const long long coll_arity = args.get_int_or("coll_arity", 0);
  if (coll_arity != 0) {
    if (coll_arity < comm::kMinCollArity || coll_arity > INT_MAX) {
      std::fprintf(stderr,
                   "error: coll_arity=%lld is not a combining-tree arity "
                   "(expected an integer >= %d)\n",
                   coll_arity, comm::kMinCollArity);
      std::exit(2);
    }
    comm::set_default_coll_arity(static_cast<int>(coll_arity));
    coll_arity_ = static_cast<int>(coll_arity);
  }
  // Executed rank counts: `ranks=N[,M...]` or `--ranks N[,M...]`.
  std::string ranks_text = args.get_string_or("ranks", "");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--ranks") == 0) ranks_text = argv[i + 1];
  }
  if (!ranks_text.empty()) {
    std::string error;
    const auto parsed = parse_ranks_list(ranks_text, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "error: invalid ranks '%s': %s\n",
                   ranks_text.c_str(), error.c_str());
      std::exit(2);
    }
    ranks_ = *parsed;
  }
  pool_last_ = pal::buffer_pool().stats();
  kernels_last_ = kernels::stats_snapshot();
  g_obs_session = this;
}

std::optional<std::vector<int>> parse_ranks_list(std::string_view text,
                                                 std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (text.empty()) return fail("empty list");
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string element(text.substr(pos, comma - pos));
    if (element.empty()) return fail("empty element");
    for (const char c : element) {
      // Reject signs and whitespace outright: a rank count is a plain
      // positive decimal integer, and strtol's leniency ("+8", " 8",
      // "-1" parsing as a huge unsigned) is exactly what we don't want.
      if (c < '0' || c > '9') {
        return fail("'" + element + "' is not a positive integer");
      }
    }
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(element.c_str(), &end, 10);
    if (errno == ERANGE || value > INT_MAX) {
      return fail("'" + element + "' overflows the rank count");
    }
    if (*end != '\0') return fail("'" + element + "' is not an integer");
    if (value <= 0) return fail("rank count must be >= 1");
    out.push_back(static_cast<int>(value));
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<int> executed_ranks() {
  ObsSession* obs = ObsSession::current();
  if (obs != nullptr && !obs->ranks_override().empty()) {
    return obs->ranks_override();
  }
  return {4, 8, 16};
}

ObsSession::~ObsSession() {
  if (g_obs_session == this) g_obs_session = nullptr;
}

ObsSession* ObsSession::current() { return g_obs_session; }

void ObsSession::record(const std::string& label,
                        const comm::RunReport& report) {
  // Multi-threaded kernels change wall time but not results; tag such
  // runs so their series stay distinguishable (serial labels unchanged).
  // Same for an explicit dispatch-variant override: identical results,
  // distinguishable series.
  std::string full =
      threads_ > 1 ? label + "/t" + std::to_string(threads_) : label;
  if (!kernels_.empty()) full += "/k" + kernels_;
  if (!sched_.empty()) full += "/s" + sched_;
  if (!coll_.empty()) full += "/c" + coll_;
  if (coll_arity_ > 0) full += "/a" + std::to_string(coll_arity_);
  if (trace_enabled()) {
    traces_.push_back({full, report.trace});
    seeds_.push_back(report.seed);
    pool_runs_.push_back(pal::buffer_pool().stats_since(pool_last_));
    pool_last_ = pal::buffer_pool().stats();
    const kernels::StatsSnapshot now = kernels::stats_snapshot();
    kernels::StatsSnapshot delta;
    for (int k = 0; k < kernels::kNumKernels; ++k) {
      for (int v = 0; v < kernels::kNumVariants; ++v) {
        delta.s[k][v].calls = now.s[k][v].calls - kernels_last_.s[k][v].calls;
        delta.s[k][v].elements =
            now.s[k][v].elements - kernels_last_.s[k][v].elements;
        delta.s[k][v].bytes = now.s[k][v].bytes - kernels_last_.s[k][v].bytes;
      }
    }
    kernels_runs_.push_back(delta);
    kernels_last_ = now;
  }
  if (metrics_enabled()) metrics_.push_back({full, report.metrics});
}

obs::ExportMeta ObsSession::export_meta() const {
  obs::ExportMeta meta;
  meta.tool = tool_;
  meta.config = config_;
  meta.threads = threads_;
  meta.seed = seeds_.empty() ? 0 : seeds_.front();
  return meta;
}

int ObsSession::finish() {
  if (finished_) return 0;
  finished_ = true;
  int rc = 0;
  const obs::ExportMeta meta = export_meta();
  if (!trace_path_.empty()) {
    obs::ChromeTraceOptions trace_options;
    trace_options.meta = &meta;
    const Status status =
        obs::write_chrome_trace_file(trace_path_, traces_, trace_options);
    if (status.ok()) {
      std::printf("wrote chrome trace (%zu runs): %s\n", traces_.size(),
                  trace_path_.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.to_string().c_str());
      rc = 1;
    }
  }
  if (metrics_enabled()) {
    const bool json = metrics_path_.size() > 5 &&
                      metrics_path_.rfind(".json") == metrics_path_.size() - 5;
    const Status status =
        json ? obs::write_metrics_json_file(metrics_path_, metrics_, &meta)
             : obs::write_metrics_csv_file(metrics_path_, metrics_, &meta);
    if (status.ok()) {
      std::printf("wrote metrics (%zu runs): %s\n", metrics_.size(),
                  metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.to_string().c_str());
      rc = 1;
    }
  }
  if (baseline_enabled()) {
    obs::analyze::Baseline baseline;
    baseline.tool = meta.tool;
    baseline.config = meta.config;
    baseline.threads = threads_;
    baseline.seed = meta.seed;
    for (std::size_t i = 0; i < traces_.size(); ++i) {
      obs::analyze::BaselineRun run = obs::analyze::baseline_run_from_analysis(
          traces_[i].label, obs::analyze::analyze_trace(traces_[i].log),
          i < seeds_.size() ? seeds_[i] : 0);
      if (i < pool_runs_.size()) {
        const pal::BufferPoolStats& pool = pool_runs_[i];
        // Short runs are dominated by warmup misses and by sim/worker
        // scheduling wobble (a lagging async worker widens the live
        // working set); only gate hit rates with enough traffic for a
        // stable steady state.
        if (pool.hits + pool.misses >= 256) {
          run.has_pool = true;
          run.pool_hit_rate = pool.hit_rate();
          run.pool_bytes_allocated =
              static_cast<double>(pool.bytes_allocated);
          run.pool_bytes_reused = static_cast<double>(pool.bytes_reused);
        }
      }
      if (i < kernels_runs_.size()) {
        // Informational only (check_baseline never fails on it): which
        // dispatch variant ran and how many elements each kernel saw.
        const kernels::StatsSnapshot& delta = kernels_runs_[i];
        std::uint64_t calls_per_variant[kernels::kNumVariants] = {};
        for (int k = 0; k < kernels::kNumKernels; ++k) {
          std::uint64_t elements = 0;
          for (int v = 0; v < kernels::kNumVariants; ++v) {
            elements += delta.s[k][v].elements;
            calls_per_variant[v] += delta.s[k][v].calls;
          }
          if (elements > 0) {
            run.kernels_elements.emplace_back(
                kernels::kernel_name(static_cast<kernels::KernelId>(k)),
                static_cast<double>(elements));
          }
        }
        int dominant = 0;
        for (int v = 1; v < kernels::kNumVariants; ++v) {
          if (calls_per_variant[v] > calls_per_variant[dominant]) dominant = v;
        }
        if (!run.kernels_elements.empty()) {
          run.has_kernels = true;
          run.kernels_variant = std::string(
              kernels::variant_name(static_cast<kernels::Variant>(dominant)));
        }
      }
      baseline.runs.push_back(std::move(run));
    }
    const Status status =
        obs::analyze::write_baseline_file(baseline_path_, baseline);
    if (status.ok()) {
      std::printf("wrote baseline (%zu runs): %s\n", baseline.runs.size(),
                  baseline_path_.c_str());
    } else {
      std::fprintf(stderr, "baseline export failed: %s\n",
                   status.to_string().c_str());
      rc = 1;
    }
  }
  return rc;
}

namespace {

miniapp::OscillatorConfig executed_sim_config(
    const MiniappBenchParams& params) {
  miniapp::OscillatorConfig cfg;
  cfg.global_cells = {params.cells_per_axis, params.cells_per_axis,
                      params.cells_per_axis};
  cfg.dt = 0.05;
  const double c = static_cast<double>(params.cells_per_axis) / 2.0;
  cfg.oscillators = {
      {miniapp::Oscillator::Kind::kPeriodic, {c, c, c},
       static_cast<double>(params.cells_per_axis) / 5.0, 2.0 * M_PI, 0.0},
      {miniapp::Oscillator::Kind::kDamped, {c / 2.0, c, c},
       static_cast<double>(params.cells_per_axis) / 7.0, 3.0, 0.1},
      {miniapp::Oscillator::Kind::kDecaying, {c, c / 2.0, 1.5 * c},
       static_cast<double>(params.cells_per_axis) / 6.0, 0.3, 0.0},
  };
  return cfg;
}

}  // namespace

comm::Runtime::Options ablation_options() {
  comm::Runtime::Options options;
  options.machine = comm::cori_haswell();
  options.seed = 7;
  ObsSession* obs = ObsSession::current();
  options.observe.trace = obs != nullptr && obs->trace_enabled();
  if (obs != nullptr) options.sched.workers = obs->sched_workers();
  return options;
}

miniapp::OscillatorConfig ablation_oscillator_config(
    std::int64_t cells_per_axis, double radius) {
  miniapp::OscillatorConfig cfg;
  cfg.global_cells = {cells_per_axis, cells_per_axis, cells_per_axis};
  cfg.dt = 0.05;
  const double c = static_cast<double>(cells_per_axis) / 2.0;
  cfg.oscillators = {{miniapp::Oscillator::Kind::kPeriodic, {c, c, c},
                      radius, 2.0 * M_PI, 0.0}};
  return cfg;
}

RunResult run_miniapp_config(MiniappConfig config,
                             const MiniappBenchParams& params) {
  RunResult result;
  result.ranks = params.ranks;
  std::vector<std::size_t> startup(static_cast<std::size_t>(params.ranks), 0);

  ObsSession* obs = ObsSession::current();

  comm::Runtime::Options options;
  options.machine = params.machine;
  options.seed = 7;
  options.observe.trace = obs != nullptr && obs->trace_enabled();
  if (obs != nullptr) options.sched.workers = obs->sched_workers();

  comm::RunReport report = comm::Runtime::run(
      params.ranks, options, [&](comm::Communicator& comm) {
        // ---- simulation init ----
        const double t0 = comm.clock().now();
        miniapp::OscillatorSim sim(comm, executed_sim_config(params));
        sim.initialize();
        const double sim_init = comm.clock().now() - t0;
        startup[static_cast<std::size_t>(comm.rank())] =
            pal::rank_memory_tracker().current_bytes();

        // ---- "Original": subroutine-called autocorrelation, no SENSEI --
        if (config == MiniappConfig::kOriginal) {
          // Direct circular-buffer autocorrelation over the sim's buffer,
          // no adaptor / bridge in the path.
          const std::size_t n = sim.values().size();
          std::vector<double> history(
              static_cast<std::size_t>(params.window) * n, 0.0);
          std::vector<double> corr(history.size(), 0.0);
          pal::TrackedBytes tracked(2 * history.size() * sizeof(double));
          pal::PhaseTimer sim_t, analysis_t;
          for (int s = 0; s < params.steps; ++s) {
            const double ts = comm.clock().now();
            sim.step();
            sim_t.add(comm.clock().now() - ts);
            const double ta = comm.clock().now();
            const int delays = std::min(s, params.window);
            for (std::size_t i = 0; i < n; ++i) {
              const double now = sim.values()[i];
              for (int d = 1; d <= delays; ++d) {
                const std::size_t slot =
                    static_cast<std::size_t>((s - d) % params.window) * n + i;
                corr[static_cast<std::size_t>(d - 1) * n + i] +=
                    history[slot] * now;
              }
              history[static_cast<std::size_t>(s % params.window) * n + i] =
                  now;
            }
            comm.advance_compute(comm.machine().compute_time(
                static_cast<std::uint64_t>(n) *
                static_cast<std::uint64_t>(delays + 1)));
            analysis_t.add(comm.clock().now() - ta);
          }
          // Final top-k reduction, identical to the SENSEI analysis.
          const double tf = comm.clock().now();
          for (int d = 0; d < params.window; ++d) {
            std::vector<double> local(corr.begin() +
                                          static_cast<std::ptrdiff_t>(d * n),
                                      corr.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              (d + 1) * n));
            std::partial_sort(
                local.begin(),
                local.begin() + std::min<std::ptrdiff_t>(params.top_k,
                                                         local.size()),
                local.end(), std::greater<>());
            local.resize(static_cast<std::size_t>(params.top_k));
            (void)comm.gatherv(std::span<const double>(local), 0);
          }
          if (comm.rank() == 0) {
            result.sim_init = sim_init;
            result.per_step_sim = sim_t.mean();
            result.per_step_analysis = analysis_t.mean();
            result.finalize = comm.clock().now() - tf;
          }
          return;
        }

        // ---- SENSEI-instrumented configurations ----
        miniapp::OscillatorDataAdaptor adaptor(sim);
        core::InSituBridge bridge(&comm);
        std::shared_ptr<analysis::Autocorrelation> autocorr;
        switch (config) {
          case MiniappConfig::kBaseline:
            break;
          case MiniappConfig::kHistogram:
            bridge.add_analysis(std::make_shared<analysis::HistogramAnalysis>(
                "data", data::Association::kPoint, params.histogram_bins));
            break;
          case MiniappConfig::kAutocorrelation:
            autocorr = std::make_shared<analysis::Autocorrelation>(
                "data", data::Association::kPoint, params.window,
                params.top_k);
            bridge.add_analysis(autocorr);
            break;
          case MiniappConfig::kCatalystSlice: {
            backends::CatalystSliceConfig cs;
            cs.image_width = params.image_w;
            cs.image_height = params.image_h;
            cs.scalar_min = -1.5;
            cs.scalar_max = 1.5;
            bridge.add_analysis(
                std::make_shared<backends::CatalystSlice>(cs));
            break;
          }
          case MiniappConfig::kLibsimSlice: {
            backends::LibsimConfig lc;
            lc.session_text =
                "[session]\narray=data\ncolormap=cool_warm\nmin=-1.5\n"
                "max=1.5\nwidth=" +
                std::to_string(params.image_w) +
                "\nheight=" + std::to_string(params.image_w) +
                "\n[plot0]\ntype=slice\naxis=2\nvalue=" +
                std::to_string(params.cells_per_axis / 2.0) + "\n";
            bridge.add_analysis(std::make_shared<backends::LibsimRender>(lc));
            break;
          }
          case MiniappConfig::kOriginal:
            break;  // handled above
        }

        (void)bridge.initialize();
        pal::PhaseTimer sim_t;
        for (int s = 0; s < params.steps; ++s) {
          const double ts = comm.clock().now();
          sim.step();
          sim_t.add(comm.clock().now() - ts);
          (void)bridge.execute(adaptor, sim.time(), s);
        }
        (void)bridge.finalize();

        if (comm.rank() == 0) {
          result.sim_init = sim_init;
          result.analysis_init = bridge.timings().initialize_seconds;
          result.per_step_sim = sim_t.mean();
          result.per_step_analysis =
              bridge.timings().analysis_per_step.mean();
          result.finalize = bridge.timings().finalize_seconds;
        }
      });

  result.total = report.max_virtual_seconds();
  result.mem_high_water = report.total_high_water_bytes();
  for (const std::size_t bytes : startup) result.mem_startup += bytes;
  if (obs != nullptr) {
    obs->record(std::string(to_string(config)) + "/p" +
                    std::to_string(params.ranks),
                report);
  }
  return result;
}

}  // namespace insitu::bench
