// Reproduces Fig 8 (ADIOS writer costs: init / advance / analysis) and
// Fig 9 (endpoint timings for the Histogram, Autocorrelation, and
// Catalyst-slice workloads) for the FlexPath in transit configuration,
// plus the §4.1.4 headline comparison: "only an average of a 50% runtime
// penalty associated with the Catalyst-Slice operation compared to doing
// it inlined in the simulation code."

#include <atomic>
#include <cstdio>

#include "backends/flexpath.hpp"
#include "bench_common.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

enum class EndpointWorkload { kHistogram, kAutocorrelation, kCatalystSlice };

const char* to_string(EndpointWorkload w) {
  switch (w) {
    case EndpointWorkload::kHistogram: return "Histogram";
    case EndpointWorkload::kAutocorrelation: return "Autocorrelation";
    case EndpointWorkload::kCatalystSlice: return "Catalyst-slice";
  }
  return "?";
}

struct FlexPathResult {
  backends::FlexPathWriterTimings writer;
  backends::FlexPathEndpointTimings endpoint;
  double endpoint_analysis_mean = 0.0;
};

FlexPathResult run_flexpath(EndpointWorkload workload, int pairs, int steps) {
  FlexPathResult result;
  std::atomic<bool> done{false};
  ObsSession* obs = ObsSession::current();
  comm::Runtime::Options options;
  options.machine = comm::cori_haswell();
  options.observe.trace = obs != nullptr && obs->trace_enabled();

  comm::RunReport report = comm::Runtime::run(2 * pairs, options, [&](comm::Communicator& world) {
    const bool is_writer = world.rank() < pairs;
    comm::Communicator group = world.split(is_writer ? 0 : 1, world.rank());
    backends::FlexPathOptions fp;
    fp.reader_init_seconds = 1.2;  // Cori's slow reader bootstrap (§4.1.4)
    if (is_writer) {
      miniapp::OscillatorConfig cfg;
      cfg.global_cells = {24, 24, 24};
      cfg.dt = 0.05;
      cfg.oscillators = {{miniapp::Oscillator::Kind::kPeriodic,
                          {12, 12, 12}, 5.0, 2.0 * M_PI, 0.0}};
      miniapp::OscillatorSim sim(group, cfg);
      sim.initialize();
      miniapp::OscillatorDataAdaptor adaptor(sim);
      auto writer = std::make_shared<backends::FlexPathWriter>(
          world, world.rank() + pairs, fp);
      core::InSituBridge bridge(&group);
      bridge.add_analysis(writer);
      (void)bridge.initialize();
      for (int s = 0; s < steps; ++s) {
        (void)bridge.execute(adaptor, sim.time(), s);
        sim.step();
      }
      (void)bridge.finalize();
      if (group.rank() == 0) result.writer = writer->timings();
    } else {
      core::InSituBridge bridge(&group);
      switch (workload) {
        case EndpointWorkload::kHistogram:
          bridge.add_analysis(std::make_shared<analysis::HistogramAnalysis>(
              "data", data::Association::kPoint, 64));
          break;
        case EndpointWorkload::kAutocorrelation:
          bridge.add_analysis(std::make_shared<analysis::Autocorrelation>(
              "data", data::Association::kPoint, 10, 3));
          break;
        case EndpointWorkload::kCatalystSlice: {
          backends::CatalystSliceConfig cs;
          cs.image_width = 256;
          cs.image_height = 144;
          cs.scalar_min = -1.5;
          cs.scalar_max = 1.5;
          bridge.add_analysis(std::make_shared<backends::CatalystSlice>(cs));
          break;
        }
      }
      (void)bridge.initialize();
      backends::FlexPathEndpoint endpoint(world, world.rank() - pairs, fp);
      (void)endpoint.run(group, bridge);
      (void)bridge.finalize();
      if (group.rank() == 0) {
        result.endpoint = endpoint.timings();
        result.endpoint_analysis_mean = endpoint.timings().analysis.mean();
        done = true;
      }
    }
  });
  (void)done;
  if (obs != nullptr) {
    obs->record(std::string("flexpath-") + to_string(workload) + "/p" +
                    std::to_string(2 * pairs),
                report);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 8 & Fig 9 — ADIOS FlexPath in transit ===\n");
  const int pairs = 4;
  const int steps = 8;

  pal::TablePrinter fig8("Fig 8 (executed): writer-side costs");
  fig8.set_header({"endpoint workload", "writer init (s)",
                   "advance/step (s)", "analysis/step (s)"});
  pal::TablePrinter fig9("Fig 9 (executed): endpoint-side costs");
  fig9.set_header({"endpoint workload", "reader init (s)",
                   "receive/step (s)", "analysis/step (s)"});

  double flexpath_slice_step = 0.0;
  for (const auto workload :
       {EndpointWorkload::kHistogram, EndpointWorkload::kAutocorrelation,
        EndpointWorkload::kCatalystSlice}) {
    const FlexPathResult r = run_flexpath(workload, pairs, steps);
    fig8.add_row({to_string(workload),
                  pal::TablePrinter::num(r.writer.initialize, 5),
                  pal::TablePrinter::num(r.writer.advance.mean(), 6),
                  pal::TablePrinter::num(r.writer.analysis.mean(), 6)});
    fig9.add_row({to_string(workload),
                  pal::TablePrinter::num(r.endpoint.initialize, 4),
                  pal::TablePrinter::num(r.endpoint.receive.mean(), 5),
                  pal::TablePrinter::num(r.endpoint.analysis.mean(), 5)});
    if (workload == EndpointWorkload::kCatalystSlice) {
      flexpath_slice_step =
          r.endpoint.receive.mean() + r.endpoint.analysis.mean();
    }
  }
  fig8.add_note("advance = metadata sync; analysis = transmit + credit wait");
  fig8.print();
  fig9.add_note("reader init dominated by connection bootstrap (Cori tuning)");
  fig9.print();

  // §4.1.4 headline: FlexPath Catalyst-slice vs inlined Catalyst-slice.
  MiniappBenchParams inline_params;
  inline_params.ranks = pairs;
  inline_params.cells_per_axis = 24;
  inline_params.steps = steps;
  const RunResult inlined =
      run_miniapp_config(MiniappConfig::kCatalystSlice, inline_params);
  pal::TablePrinter headline("§4.1.4: FlexPath vs inlined Catalyst-slice");
  headline.set_header({"path", "slice step cost (s)", "penalty"});
  headline.add_row({"inlined (in situ)",
                    pal::TablePrinter::num(inlined.per_step_analysis, 5),
                    "-"});
  const double penalty =
      inlined.per_step_analysis > 0.0
          ? (flexpath_slice_step / inlined.per_step_analysis - 1.0) * 100.0
          : 0.0;
  headline.add_row({"FlexPath (in transit)",
                    pal::TablePrinter::num(flexpath_slice_step, 5),
                    pal::TablePrinter::num(penalty, 0) + " %"});
  headline.add_note("paper: ~50% average penalty (buffering + co-scheduling)");
  headline.print();
  return obs.finish();
}
