// Reproduces Fig 17 (Nyx + SENSEI on Cori: solver time vs in situ
// histogram vs in situ slice, averaged over 40 steps, at 512/4096/32768
// cores for 1024^3/2048^3/4096^3 grids) and the §4.2.3 side findings:
// plot-file writes of 17/80/312 s and the executable-size note.

#include <cstdio>

#include "analysis/histogram.hpp"
#include "bench_common.hpp"
#include "backends/catalyst.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "pal/table.hpp"
#include "perfmodel/paper_model.hpp"
#include "proxy/nyx.hpp"

namespace {

using namespace insitu;

void executed_run() {
  pal::TablePrinter table(
      "Fig 17 (executed, 4 ranks): Nyx proxy, solver vs analysis per step");
  table.set_header({"analysis", "solver/step (s)", "analysis/step (s)",
                    "analysis share"});
  bench::ObsSession* obs = bench::ObsSession::current();
  for (const char* which : {"histogram", "slice"}) {
    double solver = 0.0, analysis_cost = 0.0;
    comm::Runtime::Options options;
    options.machine = comm::cori_haswell();
    options.observe.trace = obs != nullptr && obs->trace_enabled();
    comm::RunReport report = comm::Runtime::run(4, options, [&](comm::Communicator& comm) {
      proxy::NyxConfig cfg;
      cfg.global_cells = {16, 16, 16};
      cfg.modeled_cells_per_rank = 1 << 21;  // heavy solver step
      proxy::NyxSim sim(comm, cfg);
      sim.initialize();
      proxy::NyxDataAdaptor adaptor(sim);
      core::InSituBridge bridge(&comm);
      if (std::string(which) == "histogram") {
        bridge.add_analysis(std::make_shared<analysis::HistogramAnalysis>(
            proxy::NyxDataAdaptor::kDensityArray, data::Association::kCell,
            64));
      } else {
        backends::CatalystSliceConfig cs;
        cs.array = proxy::NyxDataAdaptor::kDensityArray;
        cs.association = data::Association::kCell;
        cs.image_width = 128;
        cs.image_height = 128;
        cs.scalar_min = 0.0;
        cs.scalar_max = 4.0;
        bridge.add_analysis(std::make_shared<backends::CatalystSlice>(cs));
      }
      (void)bridge.initialize();
      pal::PhaseTimer solver_t;
      for (long s = 0; s < 5; ++s) {
        const double t0 = comm.clock().now();
        sim.step();
        solver_t.add(comm.clock().now() - t0);
        (void)bridge.execute(adaptor, sim.time(), s);
      }
      if (comm.rank() == 0) {
        solver = solver_t.mean();
        analysis_cost = bridge.timings().analysis_per_step.mean();
      }
    });
    if (obs != nullptr) obs->record(std::string("nyx-") + which + "/p4", report);
    table.add_row({which, pal::TablePrinter::num(solver, 4),
                   pal::TablePrinter::num(analysis_cost, 4),
                   pal::TablePrinter::num(
                       100.0 * analysis_cost / (solver + analysis_cost), 1) +
                       " %"});
  }
  table.add_note("paper: analysis time negligible vs solution time");
  table.print();
}

void paper_scale_tables() {
  const comm::MachineModel cori = comm::cori_haswell();
  const io::LustreModel fs(cori.fs);
  pal::TablePrinter table("Fig 17 (paper-scale model): Nyx scaling on Cori");
  table.set_header({"grid", "cores", "solver/step (s)", "histogram (s)",
                    "slice (s)", "plotfile write (s)", "paper write"});
  struct Row {
    const char* grid;
    int cores;
    std::int64_t cells;
    const char* paper_write;
  };
  const Row rows[] = {
      {"1024^3", 512, 1024ll * 1024 * 1024, "17 s"},
      {"2048^3", 4096, 2048ll * 2048 * 2048, "80 s"},
      {"4096^3", 32768, 4096ll * 4096 * 4096, "312 s"},
  };
  for (const Row& row : rows) {
    perfmodel::NyxScale scale;
    scale.ranks = row.cores;
    scale.total_cells = row.cells;
    table.add_row(
        {row.grid, std::to_string(row.cores),
         pal::TablePrinter::num(
             perfmodel::nyx_solver_step_seconds(cori, scale), 2),
         pal::TablePrinter::num(
             perfmodel::nyx_histogram_step_seconds(cori, scale, 64), 3),
         pal::TablePrinter::num(perfmodel::nyx_slice_step_seconds(cori, scale),
                                3),
         pal::TablePrinter::num(
             perfmodel::nyx_plotfile_write_seconds(fs, scale, 8), 0),
         row.paper_write});
  }
  table.add_note("both analyses < 1 s/step at every scale (paper finding)");
  table.add_note(
      "executable-size note (paper): static Nyx 68 MB -> 109 MB with SENSEI");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 17 — Nyx cosmology on Cori ===\n");
  executed_run();
  paper_scale_tables();
  return obs.finish();
}
