// Reproduces Fig 5: one-time costs (simulation initialize, analysis
// initialize, finalize) for the miniapp in situ configurations.
//
// Paper findings: simulation init negligible; analysis init minimal except
// Libsim-slice's ~3.5 s at 45K ranks (per-rank config file checks); only
// the autocorrelation finalize (end-of-run top-k reduction) is
// non-negligible.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace insitu;
using namespace insitu::bench;

void executed_table() {
  pal::TablePrinter table("Fig 5 (executed): one-time costs");
  table.set_header(
      {"ranks", "config", "sim init (s)", "analysis init (s)", "finalize (s)"});
  const MiniappConfig configs[] = {
      MiniappConfig::kBaseline, MiniappConfig::kHistogram,
      MiniappConfig::kAutocorrelation, MiniappConfig::kCatalystSlice,
      MiniappConfig::kLibsimSlice};
  for (const int p : executed_ranks()) {
    for (const MiniappConfig config : configs) {
      MiniappBenchParams params;
      params.ranks = p;
      const RunResult r = run_miniapp_config(config, params);
      table.add_row({std::to_string(p), to_string(config),
                     pal::TablePrinter::num(r.sim_init, 5),
                     pal::TablePrinter::num(r.analysis_init, 5),
                     pal::TablePrinter::num(r.finalize, 5)});
    }
  }
  table.add_note("autocorrelation finalize = end-of-run top-k reduction");
  table.print();
}

void paper_scale_table() {
  const comm::MachineModel cori = comm::cori_haswell();
  pal::TablePrinter table("Fig 5 (paper-scale model): analysis init");
  table.set_header({"cores", "Libsim-slice init (s)", "Catalyst init (s)",
                    "autocorr finalize (s)"});
  for (const auto& scale : paper_scales()) {
    table.add_row(
        {std::to_string(scale.ranks),
         pal::TablePrinter::num(perfmodel::libsim_init_seconds(cori,
                                                               scale.ranks),
                                3),
         pal::TablePrinter::num(0.002, 3),
         pal::TablePrinter::num(perfmodel::autocorrelation_finalize_seconds(
                                    cori, scale, 10, 3),
                                3)});
  }
  table.add_note("paper: Libsim-slice shows ~3.5 s init at the 45K run");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== bench: Fig 5 — one-time in situ costs ===\n");
  executed_table();
  paper_scale_table();
  return obs.finish();
}
