// The full oscillator miniapplication driver (§3.3 / §4.1): a CLI tool
// that runs the miniapp under any combination of in situ analyses, chosen
// entirely by configuration — the "write once, use anywhere" workflow.
//
//   ./examples/oscillator_insitu ranks=8 grid=32 steps=20
//       histogram.enabled=true histogram.bins=64
//       autocorrelation.enabled=true autocorrelation.window=10
//       catalyst.enabled=true catalyst.width=320 catalyst.height=180
//       catalyst.output=/tmp/osc_frames deck=examples/sample.osc
//   (all on one command line)
//
// Any [histogram]/[autocorrelation]/[statistics]/[catalyst]/[libsim]
// option accepted by ConfigurableAnalysis works on the command line.
//
// Observability (docs/OBSERVABILITY.md): `--trace run.json` records every
// instrumented span and writes a chrome://tracing file with one thread
// track per simulated rank; `--metrics run.csv` (or `.json`) dumps the
// merged bridge/backend/comm/io metric series.
//
// Execution engine (docs/OBSERVABILITY.md "Async execution"):
// `async=block|drop_oldest|latest_only` moves analyses onto a per-rank
// worker thread behind a bounded snapshot queue (`queue_depth=N`), and
// `threads=N` lets the data-parallel kernels use N threads.

#include <cstdio>
#include <filesystem>

#include "backends/configurable.hpp"
#include "comm/runtime.hpp"
#include "core/async_bridge.hpp"
#include "core/bridge.hpp"
#include "exec/task_pool.hpp"
#include "io/block_io.hpp"
#include "miniapp/adaptor.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics_io.hpp"
#include "pal/config.hpp"

using namespace insitu;

namespace {

const char* kDefaultDeck = R"(
# kind      x  y  z   radius omega  [zeta]
periodic   16 16 16   5.0    6.2832
damped      8 20 12   4.0    3.0    0.15
decaying   24  8 20   4.5    0.4
)";

}  // namespace

int main(int argc, char** argv) {
  const pal::Config args = pal::Config::from_args(argc, argv);
  const int ranks = static_cast<int>(args.get_int_or("ranks", 8));
  const int grid = static_cast<int>(args.get_int_or("grid", 32));
  const int steps = static_cast<int>(args.get_int_or("steps", 20));
  const std::string machine_name = args.get_string_or("machine", "cori");
  const int threads = static_cast<int>(args.get_int_or("threads", 1));
  exec::set_global_threads(threads);

  const std::string async_name = args.get_string_or("async", "");
  core::AsyncBridgeOptions async_options;
  async_options.queue_depth =
      static_cast<int>(args.get_int_or("queue_depth", 2));
  if (!async_name.empty()) {
    auto policy = comm::parse_backpressure_policy(async_name);
    if (!policy.ok()) {
      std::fprintf(stderr, "bad async option: %s\n",
                   policy.status().to_string().c_str());
      return 1;
    }
    async_options.policy = *policy;
  }

  // Read the oscillator deck (file or built-in default).
  std::string deck_text = kDefaultDeck;
  if (args.has("deck")) {
    auto bytes = io::read_file_bytes(args.get_string_or("deck", ""));
    if (!bytes.ok()) {
      std::fprintf(stderr, "cannot read deck: %s\n",
                   bytes.status().to_string().c_str());
      return 1;
    }
    deck_text.assign(reinterpret_cast<const char*>(bytes->data()),
                     bytes->size());
  }
  auto oscillators = miniapp::parse_oscillators(deck_text);
  if (!oscillators.ok()) {
    std::fprintf(stderr, "bad deck: %s\n",
                 oscillators.status().to_string().c_str());
    return 1;
  }

  if (args.has("catalyst.output")) {
    std::filesystem::create_directories(
        args.get_string_or("catalyst.output", ""));
  }

  std::printf("oscillator miniapp: %d ranks, %d^3 grid, %d steps, %zu "
              "oscillators, machine=%s\n",
              ranks, grid, steps, oscillators->size(), machine_name.c_str());
  if (!async_name.empty() || threads > 1) {
    std::printf("execution: %s bridge (policy=%s, queue_depth=%d), "
                "%d kernel thread(s)\n",
                async_name.empty() ? "sync" : "async",
                async_name.empty() ? "-" : async_name.c_str(),
                async_options.queue_depth, threads);
  }

  const std::string trace_path = args.get_string_or("trace", "");
  const std::string metrics_path = args.get_string_or("metrics", "");

  comm::Runtime::Options options;
  options.machine = comm::machine_by_name(machine_name);
  options.observe.trace = !trace_path.empty();
  int exit_code = 0;

  comm::RunReport report = comm::Runtime::run(
      ranks, options, [&](comm::Communicator& comm) {
        miniapp::OscillatorConfig cfg;
        cfg.global_cells = {grid, grid, grid};
        cfg.dt = args.get_double_or("dt", 0.05);
        cfg.oscillators = comm.rank() == 0
                              ? *oscillators
                              : std::vector<miniapp::Oscillator>{};
        miniapp::OscillatorSim sim(comm, cfg);
        sim.initialize();  // broadcasts the deck from rank 0
        miniapp::OscillatorDataAdaptor adaptor(sim);

        auto analyses = backends::configure_analyses(args);
        if (!analyses.ok()) {
          if (comm.rank() == 0) {
            std::fprintf(stderr, "bad analysis config: %s\n",
                         analyses.status().to_string().c_str());
            exit_code = 2;  // usage error, like every other bad flag
          }
          return;
        }
        if (!async_name.empty()) {
          core::AsyncBridge bridge(&comm, async_options);
          for (const auto& analysis : *analyses) {
            bridge.add_analysis(analysis);
          }
          if (!bridge.initialize().ok()) return;
          for (int s = 0; s < steps; ++s) {
            auto keep = bridge.execute(adaptor, sim.time(), s);
            if (!keep.ok() || !*keep) break;
            sim.step();
          }
          (void)bridge.finalize();

          if (comm.rank() == 0) {
            std::printf(
                "done: %zu analyses, analysis init %.4fs, per-step "
                "(sim-visible) %.5fs, finalize %.4fs, %ld/%ld steps "
                "analyzed (virtual %s seconds)\n",
                analyses->size(), bridge.timings().initialize_seconds,
                bridge.timings().analysis_per_step.mean(),
                bridge.timings().finalize_seconds, bridge.executed_steps(),
                bridge.executed_steps() + bridge.total_dropped(),
                machine_name.c_str());
          }
          return;
        }

        core::InSituBridge bridge(&comm);
        for (const auto& analysis : *analyses) {
          bridge.add_analysis(analysis);
        }
        if (!bridge.initialize().ok()) return;
        for (int s = 0; s < steps; ++s) {
          auto keep = bridge.execute(adaptor, sim.time(), s);
          if (!keep.ok() || !*keep) break;
          sim.step();
        }
        (void)bridge.finalize();

        if (comm.rank() == 0) {
          std::printf(
              "done: %zu analyses, analysis init %.4fs, per-step %.5fs, "
              "finalize %.4fs (virtual %s seconds)\n",
              analyses->size(), bridge.timings().initialize_seconds,
              bridge.timings().analysis_per_step.mean(),
              bridge.timings().finalize_seconds, machine_name.c_str());
        }
      });
  std::printf("job virtual time-to-solution: %.4f s, memory HWM (sum): "
              "%.2f MiB\n",
              report.max_virtual_seconds(),
              static_cast<double>(report.total_high_water_bytes()) /
                  (1024.0 * 1024.0));

  obs::ExportMeta meta;
  meta.tool = "oscillator_insitu";
  for (int i = 1; i < argc; ++i) {
    if (i > 1) meta.config += ' ';
    meta.config += argv[i];
  }
  meta.threads = threads;
  meta.seed = report.seed;

  if (!trace_path.empty()) {
    obs::ChromeTraceOptions trace_options;
    trace_options.meta = &meta;
    const Status status = obs::write_chrome_trace_file(
        trace_path, report.trace, trace_options);
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.to_string().c_str());
      exit_code = 1;
    } else {
      std::printf("wrote chrome trace (%zu spans, %d rank tracks): %s\n",
                  report.trace.events.size(), report.trace.nranks,
                  trace_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    const std::vector<obs::MetricsRun> runs = {
        {"oscillator", report.metrics}};
    const bool json = metrics_path.size() > 5 &&
                      metrics_path.rfind(".json") == metrics_path.size() - 5;
    const Status status =
        json ? obs::write_metrics_json_file(metrics_path, runs, &meta)
             : obs::write_metrics_csv_file(metrics_path, runs, &meta);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.to_string().c_str());
      exit_code = 1;
    } else {
      std::printf("wrote metrics (%zu series): %s\n",
                  report.metrics.size(), metrics_path.c_str());
    }
  }
  return exit_code;
}
