// In transit deployment (§4.1.4 / Fig 2): the simulation and the analysis
// run as two rank groups of one job. Writers stream each timestep through
// the ADIOS/FlexPath-like staging transport; endpoints run an unchanged
// analysis stack (histogram + Catalyst-like slice) against the staged
// data. Supports M:N fan-in (more writers than endpoints).
//
//   ./examples/in_transit writers=4 endpoints=2 steps=10 grid=24

#include <cstdio>

#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "backends/flexpath.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/config.hpp"

using namespace insitu;

int main(int argc, char** argv) {
  const pal::Config args = pal::Config::from_args(argc, argv);
  const int writers = static_cast<int>(args.get_int_or("writers", 4));
  const int endpoints = static_cast<int>(args.get_int_or("endpoints", 2));
  const int steps = static_cast<int>(args.get_int_or("steps", 10));
  const int grid = static_cast<int>(args.get_int_or("grid", 24));

  std::printf("in transit: %d writers -> %d endpoints, %d steps, %d^3 grid\n",
              writers, endpoints, steps, grid);

  comm::Runtime::Options options;
  options.machine = comm::cori_haswell();
  comm::Runtime::run(writers + endpoints, options, [&](comm::Communicator&
                                                           world) {
    const bool is_writer = world.rank() < writers;
    comm::Communicator group = world.split(is_writer ? 0 : 1, world.rank());

    if (is_writer) {
      miniapp::OscillatorConfig cfg;
      cfg.global_cells = {grid, grid, grid};
      cfg.dt = 0.05;
      cfg.oscillators = {{miniapp::Oscillator::Kind::kPeriodic,
                          {grid / 2.0, grid / 2.0, grid / 2.0},
                          grid / 5.0, 2.0 * 3.14159, 0.0}};
      miniapp::OscillatorSim sim(group, cfg);
      sim.initialize();
      miniapp::OscillatorDataAdaptor adaptor(sim);
      // The transport is just another analysis under the bridge.
      const int partner = writers + world.rank() % endpoints;
      auto transport =
          std::make_shared<backends::FlexPathWriter>(world, partner);
      core::InSituBridge bridge(&group);
      bridge.add_analysis(transport);
      if (!bridge.initialize().ok()) return;
      for (int s = 0; s < steps; ++s) {
        (void)bridge.execute(adaptor, sim.time(), s);
        sim.step();
      }
      (void)bridge.finalize();
      if (group.rank() == 0) {
        std::printf(
            "writer: advance %.6fs/step, transmit(+block) %.6fs/step\n",
            transport->timings().advance.mean(),
            transport->timings().analysis.mean());
      }
    } else {
      const int index = world.rank() - writers;
      auto histogram = std::make_shared<analysis::HistogramAnalysis>(
          "data", data::Association::kPoint, 32);
      backends::CatalystSliceConfig cs;
      cs.image_width = 192;
      cs.image_height = 108;
      cs.scalar_min = -1.2;
      cs.scalar_max = 1.2;
      auto slice = std::make_shared<backends::CatalystSlice>(cs);
      core::InSituBridge bridge(&group);
      bridge.add_analysis(histogram);
      bridge.add_analysis(slice);
      if (!bridge.initialize().ok()) return;
      backends::FlexPathEndpoint endpoint(
          world, backends::FlexPathEndpoint::writers_for_endpoint(
                     writers, endpoints, index));
      if (!endpoint.run(group, bridge).ok()) return;
      (void)bridge.finalize();
      if (group.rank() == 0) {
        std::printf(
            "endpoint: %ld steps staged; receive %.5fs/step, analysis "
            "%.5fs/step; last histogram total %lld; %ld slice images\n",
            endpoint.timings().steps, endpoint.timings().receive.mean(),
            endpoint.timings().analysis.mean(),
            static_cast<long long>(histogram->last_result().total()),
            slice->images_produced());
      }
    }
  });
  return 0;
}
