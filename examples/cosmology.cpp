// Nyx-style scenario (§4.2.3): a particle-mesh cosmology proxy with in
// situ histogram + density slice every step, contrasted with the post hoc
// alternative of writing plot files. Demonstrates the paper's temporal-
// resolution argument: in situ images every step cost less than saving
// every 100th plot file.
//
//   ./examples/cosmology ranks=4 grid=24 steps=12 output=/tmp/nyx

#include <cstdio>
#include <filesystem>

#include "analysis/histogram.hpp"
#include "backends/catalyst.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "io/writers.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/config.hpp"
#include "proxy/nyx.hpp"

using namespace insitu;

int main(int argc, char** argv) {
  const pal::Config args = pal::Config::from_args(argc, argv);
  const int ranks = static_cast<int>(args.get_int_or("ranks", 4));
  const int grid = static_cast<int>(args.get_int_or("grid", 24));
  const int steps = static_cast<int>(args.get_int_or("steps", 12));
  const std::string output = args.get_string_or("output", "");
  if (!output.empty()) std::filesystem::create_directories(output);

  std::printf("cosmology proxy: %d ranks, %d^3 cells, %d steps\n", ranks,
              grid, steps);

  comm::Runtime::Options options;
  options.machine = comm::cori_haswell();
  comm::Runtime::run(ranks, options, [&](comm::Communicator& comm) {
    proxy::NyxConfig cfg;
    cfg.global_cells = {grid, grid, grid};
    cfg.particles_per_cell = 2;
    cfg.gravity = 0.15;
    proxy::NyxSim sim(comm, cfg);
    sim.initialize();
    proxy::NyxDataAdaptor adaptor(sim);

    auto histogram = std::make_shared<analysis::HistogramAnalysis>(
        proxy::NyxDataAdaptor::kDensityArray, data::Association::kCell, 32);
    backends::CatalystSliceConfig cs;
    cs.array = proxy::NyxDataAdaptor::kDensityArray;
    cs.association = data::Association::kCell;
    cs.image_width = 256;
    cs.image_height = 256;
    cs.colormap = "heat";
    cs.scalar_min = 0.0;
    cs.scalar_max = 6.0;
    cs.output_directory = output;
    auto slice = std::make_shared<backends::CatalystSlice>(cs);

    core::InSituBridge bridge(&comm);
    bridge.add_analysis(histogram);
    bridge.add_analysis(slice);
    if (!bridge.initialize().ok()) return;

    for (int s = 0; s < steps; ++s) {
      sim.step();
      (void)bridge.execute(adaptor, sim.time(), s);
      const std::int64_t particles = sim.global_particle_count();
      if (comm.rank() == 0) {
        const auto& h = histogram->last_result();
        std::printf(
            "step %3d  particles=%lld  density in [%.2f, %.2f]\n", s,
            static_cast<long long>(particles), h.min, h.max);
      }
    }
    (void)bridge.finalize();

    // Contrast: what one plot-file dump of this step would cost (modeled).
    const io::LustreModel fs(comm.machine().fs);
    const std::uint64_t plotfile_bytes =
        static_cast<std::uint64_t>(sim.local_cells()) * sizeof(double) * 8;
    if (comm.rank() == 0) {
      std::printf(
          "in situ analysis/step: %.4fs (virtual)  vs  one 8-variable "
          "plot-file write: %.4fs (modeled)\n",
          bridge.timings().analysis_per_step.mean(),
          fs.file_per_rank_write_time(comm.size(), plotfile_bytes));
      std::printf("produced %ld density slices\n", slice->images_produced());
    }
  });
  return 0;
}
