// AVF-LESLIE-style scenario (§4.2.2): a temporally evolving planar mixing
// layer rendered in situ through the Libsim-like backend with a session
// file — 3 isosurfaces + 3 slices of vorticity magnitude, every 5th step,
// exactly the paper's visualization.
//
//   ./examples/mixing_layer ranks=4 grid=33 steps=25 output=/tmp/tml

#include <cstdio>
#include <filesystem>

#include "backends/libsim.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "pal/config.hpp"
#include "proxy/leslie.hpp"

using namespace insitu;

namespace {

std::string tml_session(int grid) {
  const double mid = (grid - 1) / 2.0;
  char buf[512];
  std::snprintf(buf, sizeof buf, R"(
[session]
array = vorticity_magnitude
colormap = heat
min = 0
max = 1.5
width = 320
height = 320
[plot0]
type = isosurface
value = 0.3
[plot1]
type = isosurface
value = 0.6
[plot2]
type = isosurface
value = 0.9
[plot3]
type = slice
axis = 0
value = %.1f
[plot4]
type = slice
axis = 1
value = %.1f
[plot5]
type = slice
axis = 2
value = %.1f
)",
                mid, mid, mid);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const pal::Config args = pal::Config::from_args(argc, argv);
  const int ranks = static_cast<int>(args.get_int_or("ranks", 4));
  const int grid = static_cast<int>(args.get_int_or("grid", 33));
  const int steps = static_cast<int>(args.get_int_or("steps", 25));
  const std::string output = args.get_string_or("output", "");
  if (!output.empty()) std::filesystem::create_directories(output);

  std::printf("temporal mixing layer: %d ranks, %d^3 points, %d steps\n",
              ranks, grid, steps);

  comm::Runtime::Options options;
  options.machine = comm::titan();  // the paper's AVF-LESLIE platform
  comm::Runtime::run(ranks, options, [&](comm::Communicator& comm) {
    proxy::LeslieConfig cfg;
    cfg.global_points = {grid, grid, grid};
    proxy::LeslieSim sim(comm, cfg);
    sim.initialize();
    proxy::LeslieDataAdaptor adaptor(sim);

    backends::LibsimConfig lc;
    lc.session_text = tml_session(grid);
    lc.every_n_steps = 5;  // render 1 of every 5 SENSEI invocations
    lc.output_directory = output;
    auto libsim = std::make_shared<backends::LibsimRender>(lc);
    core::InSituBridge bridge(&comm);
    bridge.add_analysis(libsim);
    if (!bridge.initialize().ok()) return;

    for (int s = 0; s < steps; ++s) {
      sim.step();
      (void)bridge.execute(adaptor, sim.time(), s);
      if (comm.rank() == 0 && s % 5 == 0) {
        std::printf("step %3d  kinetic energy (collective below)\n", s);
      }
      const double ke = sim.global_kinetic_energy();
      if (comm.rank() == 0 && s % 5 == 0) {
        std::printf("          KE = %.4f, libsim analyze = %.4fs\n", ke,
                    libsim->last_execute_seconds());
      }
    }
    (void)bridge.finalize();
    if (comm.rank() == 0) {
      std::printf("rendered %ld images (isosurfaces + slices of vorticity)\n",
                  libsim->images_produced());
      if (!output.empty()) std::printf("frames in %s\n", output.c_str());
    }
  });
  return 0;
}
