// PHASTA-style scenario (§4.2.1): live in situ monitoring + steering of a
// flow-control study. The paper: "using visual feedback from images
// provided by SENSEI, the frequency and the amplitude of the flow control
// can be manipulated to interactively determine the combination that ...
// provide[s] the most improvement".
//
// Here the "human in the loop" is an automated controller attached to the
// Catalyst live-viewer hook: it inspects each rendered frame, sweeps the
// synthetic-jet amplitude, and stops the run once the response saturates.
//
//   ./examples/flow_control ranks=4 steps=40 output=/tmp/flow

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "backends/catalyst.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "pal/config.hpp"
#include "proxy/phasta.hpp"

using namespace insitu;

int main(int argc, char** argv) {
  const pal::Config args = pal::Config::from_args(argc, argv);
  const int ranks = static_cast<int>(args.get_int_or("ranks", 4));
  const int steps = static_cast<int>(args.get_int_or("steps", 40));
  const std::string output = args.get_string_or("output", "");
  if (!output.empty()) std::filesystem::create_directories(output);

  std::printf("flow control study: %d ranks, up to %d steps\n", ranks, steps);

  comm::Runtime::Options options;
  options.machine = comm::mira_bgq();  // PHASTA's platform
  comm::Runtime::run(ranks, options, [&](comm::Communicator& comm) {
    proxy::PhastaConfig cfg;
    cfg.cells_per_rank = {6, 6, 6};
    proxy::PhastaSim sim(comm, cfg);
    sim.initialize();
    proxy::PhastaDataAdaptor adaptor(sim);

    backends::CatalystSliceConfig cs;
    cs.array = "velocity_magnitude";
    cs.image_width = 400;
    cs.image_height = 100;  // the paper's skinny 800x200 aspect
    cs.colormap = "cool_warm";
    cs.scalar_min = 0.0;
    cs.scalar_max = 2.5;
    cs.every_n_steps = 2;  // images every other step, as in the paper
    cs.output_directory = output;
    auto slice = std::make_shared<backends::CatalystSlice>(cs);

    // The steering controller: watches the live image stream, sweeps the
    // jet amplitude upward, and stops when brightness (a cheap stand-in
    // for observed momentum injection) stops improving.
    double best_response = -1.0;
    int stalls = 0;
    slice->live_viewer = [&](const render::Image& frame, long step) {
      double response = 0.0;
      for (const render::Rgba& p : frame.pixels()) response += p.r;
      response /= static_cast<double>(frame.num_pixels());
      const double amplitude = 0.3 + 0.1 * static_cast<double>(step / 2);
      std::printf("  [viewer] step %3ld  response=%6.2f  next amplitude=%.2f\n",
                  step, response, amplitude);
      if (response > best_response + 0.05) {
        best_response = response;
        stalls = 0;
      } else if (++stalls >= 3) {
        std::printf("  [viewer] response saturated — stopping run\n");
        return false;  // steering: stop the simulation
      }
      return true;
    };

    core::InSituBridge bridge(&comm);
    bridge.add_analysis(slice);
    if (!bridge.initialize().ok()) return;

    for (int s = 0; s < steps; ++s) {
      // Live problem redefinition: retune the jet between steps (the
      // parameters the real PHASTA exposes for reconfiguration).
      sim.set_jet(0.3 + 0.1 * (s / 2), 2.0);
      sim.step();
      auto keep = bridge.execute(adaptor, sim.time(), s);
      if (!keep.ok() || !*keep) break;
    }
    (void)bridge.finalize();
    if (comm.rank() == 0) {
      std::printf("run ended after %ld images; best response %.2f\n",
                  slice->images_produced(), best_response);
    }
  });
  return 0;
}
