// Quickstart: instrument a tiny simulation with the SENSEI-style generic
// in situ interface in ~60 lines.
//
//   1. implement a DataAdaptor for your simulation's data layout
//      (zero-copy wherever possible),
//   2. register analyses with an InSituBridge,
//   3. call bridge.execute(adaptor, t, step) every timestep.
//
// Build & run:  ./examples/quickstart [ranks=4] [steps=8]

#include <cstdio>

#include "analysis/histogram.hpp"
#include "comm/runtime.hpp"
#include "core/bridge.hpp"
#include "miniapp/adaptor.hpp"
#include "pal/config.hpp"

using namespace insitu;

int main(int argc, char** argv) {
  const pal::Config args = pal::Config::from_args(argc, argv);
  const int ranks = static_cast<int>(args.get_int_or("ranks", 4));
  const int steps = static_cast<int>(args.get_int_or("steps", 8));

  std::printf("quickstart: %d ranks, %d steps\n", ranks, steps);

  comm::Runtime::run(ranks, [&](comm::Communicator& comm) {
    // The "simulation": the oscillator miniapp on a 32^3 grid.
    miniapp::OscillatorConfig cfg;
    cfg.global_cells = {32, 32, 32};
    cfg.dt = 0.05;
    cfg.oscillators = {{miniapp::Oscillator::Kind::kPeriodic,
                        {16, 16, 16}, 6.0, 2.0 * 3.14159, 0.0}};
    miniapp::OscillatorSim sim(comm, cfg);
    sim.initialize();

    // 1. The data adaptor: maps simulation memory to the data model.
    miniapp::OscillatorDataAdaptor adaptor(sim);

    // 2. The bridge: register any analyses (here: a 32-bin histogram).
    auto histogram = std::make_shared<analysis::HistogramAnalysis>(
        "data", data::Association::kPoint, 32);
    core::InSituBridge bridge(&comm);
    bridge.add_analysis(histogram);
    if (!bridge.initialize().ok()) return;

    // 3. The time loop: one in situ call per step.
    for (int s = 0; s < steps; ++s) {
      (void)bridge.execute(adaptor, sim.time(), s);
      if (comm.rank() == 0) {
        const auto& h = histogram->last_result();
        std::printf("step %2d  range [%+.3f, %+.3f]  %lld values\n", s,
                    h.min, h.max, static_cast<long long>(h.total()));
      }
      sim.step();
    }
    (void)bridge.finalize();
  });
  return 0;
}
